"""Tests for run_plan() and the uniform ResultSet."""

import pytest

from repro.api import (
    ExperimentPlan,
    MobilitySpec,
    ReplacementSpec,
    ResultSet,
    SolverSpec,
    SweepSpec,
    run_plan,
)
from repro.sim.runner import (
    AlgorithmComparison,
    ExperimentResult,
    Fig7Result,
    ReplacementAblation,
)

_TINY_BASE = {
    "library_case": "special",
    "num_servers": 2,
    "num_users": 4,
    "num_models": 6,
}


@pytest.fixture(scope="module")
def sweep_result():
    plan = ExperimentPlan(
        name="tiny sweep",
        sweep=SweepSpec("capacity", (0.1, 0.2)),
        solvers=(SolverSpec("gen"), SolverSpec("independent")),
        base=_TINY_BASE,
        num_topologies=2,
    )
    return run_plan(plan)


@pytest.fixture(scope="module")
def comparison_result():
    plan = ExperimentPlan(
        name="tiny comparison",
        solvers=(SolverSpec("gen"), SolverSpec("independent")),
        base=_TINY_BASE,
        num_topologies=2,
    )
    return run_plan(plan)


class TestSweepExecution:
    def test_returns_result_set_with_plan(self, sweep_result):
        assert isinstance(sweep_result, ResultSet)
        assert isinstance(sweep_result, ExperimentResult)
        assert sweep_result.plan is not None
        assert sweep_result.kind == "sweep"

    def test_series_shape(self, sweep_result):
        assert set(sweep_result.series) == {
            "TrimCaching Gen",
            "Independent Caching",
        }
        assert len(sweep_result.x_values) == 2
        for stats in sweep_result.series.values():
            assert (stats.counts == 2).all()

    def test_renderings(self, sweep_result):
        assert "tiny sweep" in sweep_result.to_table()
        assert "tiny sweep" in sweep_result.to_chart()
        csv_text = sweep_result.to_csv()
        assert "Q (GB, paper scale)" in csv_text
        assert "TrimCaching Gen mean" in csv_text

    def test_json_round_trip(self, sweep_result):
        restored = ResultSet.from_json(sweep_result.to_json())
        assert restored.plan == sweep_result.plan
        for algo in sweep_result.series:
            assert (
                restored.series[algo].means == sweep_result.series[algo].means
            ).all()
        assert restored.to_json() == sweep_result.to_json()


class TestComparisonExecution:
    def test_kind_and_view(self, comparison_result):
        assert comparison_result.kind == "comparison"
        comparison = comparison_result.comparison()
        assert isinstance(comparison, AlgorithmComparison)
        assert set(comparison.hit_ratios) == {
            "TrimCaching Gen",
            "Independent Caching",
        }
        assert comparison.hit_ratios["TrimCaching Gen"].count == 2

    def test_to_table_uses_comparison_layout(self, comparison_result):
        table = comparison_result.to_table()
        assert "hit ratio (mean)" in table
        assert "runtime (s)" in table

    def test_comparison_view_requires_single_point(self, sweep_result):
        with pytest.raises(ValueError, match="single-point"):
            sweep_result.comparison()

    def test_mobility_view_requires_mobility_kind(self, comparison_result):
        with pytest.raises(ValueError, match="not a mobility result"):
            comparison_result.mobility()


class TestStudyExecution:
    def test_mobility_plan(self):
        plan = ExperimentPlan(
            name="tiny mobility",
            solvers=(SolverSpec("gen"),),
            study=MobilitySpec(horizon_s=300.0, sample_every=30, num_runs=1),
            base=_TINY_BASE,
        )
        result = run_plan(plan)
        assert result.kind == "mobility"
        fig7 = result.mobility()
        assert isinstance(fig7, Fig7Result)
        assert "TrimCaching Gen" in fig7.series
        means = fig7.series["TrimCaching Gen"].means
        assert ((0 <= means) & (means <= 1)).all()
        assert "time (min)" in result.to_table()

    def test_replacement_plan(self):
        plan = ExperimentPlan(
            name="tiny replacement",
            solvers=(SolverSpec("gen"),),
            study=ReplacementSpec(
                thresholds=(0.0, 0.9), num_runs=1, horizon_s=300.0
            ),
            base={**_TINY_BASE, "storage_bytes": 150_000_000},
        )
        result = run_plan(plan)
        assert result.kind == "replacement"
        ablation = result.replacement()
        assert isinstance(ablation, ReplacementAblation)
        assert ablation.thresholds == [0.0, 0.9]
        assert ablation.replacements[0.0].mean == 0.0  # never replaces
        assert "replace when below" in result.to_table()


class TestCustomScenarios:
    """The point of the API: new scenarios are declarations, not code."""

    def test_zipf_exponent_sweep(self):
        plan = ExperimentPlan(
            name="zipf sensitivity",
            sweep=SweepSpec("zipf_exponent", (0.4, 1.2)),
            solvers=(SolverSpec("gen"),),
            base=_TINY_BASE,
            num_topologies=1,
        )
        result = run_plan(plan)
        assert result.x_label == "zipf_exponent"
        assert len(result.x_values) == 2

    def test_baseline_solvers_in_a_sweep(self):
        plan = ExperimentPlan(
            name="baselines",
            sweep=SweepSpec("capacity", (0.2,)),
            solvers=(
                SolverSpec("random"),
                SolverSpec("top-popularity"),
                SolverSpec("reference-gen"),
            ),
            base=_TINY_BASE,
            num_topologies=1,
        )
        result = run_plan(plan)
        assert set(result.series) == {
            "Random",
            "Top popularity",
            "TrimCaching Gen (reference)",
        }


class TestReviewRegressions:
    def test_replacement_plan_refuses_multiple_solvers(self):
        from repro.errors import ConfigurationError

        plan = ExperimentPlan(
            name="two solvers",
            solvers=(SolverSpec("gen"), SolverSpec("independent")),
            study=ReplacementSpec(thresholds=(0.0,), num_runs=1, horizon_s=60.0),
            base=_TINY_BASE,
        )
        with pytest.raises(ConfigurationError, match="exactly one"):
            run_plan(plan)
