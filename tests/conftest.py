"""Shared fixtures: hand-built tiny libraries and small scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.placement import PlacementInstance
from repro.models.blocks import ParameterBlock
from repro.models.library import ModelLibrary
from repro.models.model import Model
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import Scenario, build_scenario
from repro.utils.units import GB, MB


@pytest.fixture
def tiny_library() -> ModelLibrary:
    """Three models over five blocks with one shared prefix.

    * block 0 (10 MB) shared by models 0 and 1;
    * blocks 1, 2 (5 MB each) specific to models 0, 1;
    * blocks 3, 4 (8 + 2 MB) forming the standalone model 2.
    """
    blocks = [
        ParameterBlock(0, 10 * MB, name="shared.base"),
        ParameterBlock(1, 5 * MB, name="m0.head"),
        ParameterBlock(2, 5 * MB, name="m1.head"),
        ParameterBlock(3, 8 * MB, name="m2.backbone"),
        ParameterBlock(4, 2 * MB, name="m2.head"),
    ]
    models = [
        Model(0, (0, 1), name="m0"),
        Model(1, (0, 2), name="m1"),
        Model(2, (3, 4), name="m2"),
    ]
    return ModelLibrary(blocks, models)


def make_instance(
    library: ModelLibrary,
    demand: np.ndarray,
    feasible: np.ndarray,
    capacities,
) -> PlacementInstance:
    """Thin helper so tests construct instances in one line."""
    return PlacementInstance(library, demand, feasible, capacities)


@pytest.fixture
def tiny_instance(tiny_library) -> PlacementInstance:
    """Two servers, two users, three models; everything feasible.

    Capacities: server 0 fits models 0+1 deduplicated (20 MB), server 1
    fits only model 2 (10 MB).
    """
    demand = np.array(
        [
            [0.5, 0.3, 0.2],
            [0.1, 0.4, 0.5],
        ]
    )
    feasible = np.ones((2, 2, 3), dtype=bool)
    return make_instance(tiny_library, demand, feasible, [20 * MB, 10 * MB])


@pytest.fixture(scope="session")
def small_scenario() -> Scenario:
    """A loose-capacity special-case scenario (session-scoped: read-only)."""
    config = ScenarioConfig(num_servers=3, num_users=8, num_models=9)
    return build_scenario(config, seed=7)


@pytest.fixture(scope="session")
def tight_scenario() -> Scenario:
    """A tight-capacity scenario where algorithms meaningfully differ."""
    config = ScenarioConfig(
        num_servers=3,
        num_users=8,
        num_models=9,
        storage_bytes=int(0.12 * GB),
    )
    return build_scenario(config, seed=11)


@pytest.fixture(scope="session")
def general_scenario() -> Scenario:
    """A general-case (two-round library) scenario."""
    config = ScenarioConfig(
        num_servers=3,
        num_users=8,
        num_models=12,
        storage_bytes=int(0.25 * GB),
        library_case="general",
    )
    return build_scenario(config, seed=13)
