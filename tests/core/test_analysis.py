"""Tests for placement diagnostics."""

import numpy as np
import pytest

from repro.core.analysis import analyze_placement
from repro.core.gen import TrimCachingGen
from repro.core.objective import hit_ratio
from repro.core.placement import Placement


class TestAnalyzePlacement:
    def test_hit_ratio_matches_objective(self, tight_scenario):
        result = TrimCachingGen().solve(tight_scenario.instance)
        report = analyze_placement(tight_scenario.instance, result.placement)
        assert report.hit_ratio == pytest.approx(result.hit_ratio)

    def test_miss_decomposition_sums_to_one(self, tight_scenario):
        result = TrimCachingGen().solve(tight_scenario.instance)
        report = analyze_placement(tight_scenario.instance, result.placement)
        total = (
            report.hit_ratio
            + report.unserved_uncached
            + report.unserved_unreachable
        )
        assert total == pytest.approx(1.0)

    def test_server_summaries(self, tiny_instance):
        placement = Placement.from_server_sets(2, 3, {0: [0, 1]})
        report = analyze_placement(tiny_instance, placement)
        server0 = report.servers[0]
        assert server0.num_models == 2
        assert server0.used_bytes == 20_000_000
        assert server0.dedup_saved_bytes == 10_000_000  # shared block once
        assert server0.utilization == pytest.approx(1.0)
        assert report.servers[1].num_models == 0

    def test_replication_counts(self, tiny_instance):
        placement = Placement.from_server_sets(2, 3, {0: [0], 1: [0, 2]})
        report = analyze_placement(tiny_instance, placement)
        assert report.replication.tolist() == [2, 0, 1]
        assert report.mean_replication == pytest.approx(1.5)

    def test_empty_placement(self, tiny_instance):
        report = analyze_placement(
            tiny_instance, tiny_instance.new_placement()
        )
        assert report.hit_ratio == 0.0
        assert report.mean_replication == 0.0
        # Everything is reachable in the tiny fixture, so misses are all
        # "not cached".
        assert report.unserved_uncached == pytest.approx(1.0)
        assert report.unserved_unreachable == 0.0

    def test_unreachable_demand_identified(self, tiny_library):
        from tests.conftest import make_instance

        demand = np.full((2, 3), 1.0 / 3.0)
        feasible = np.zeros((1, 2, 3), dtype=bool)
        feasible[0, :, 0] = True  # only model 0 ever reachable
        instance = make_instance(tiny_library, demand, feasible, [10**9])
        placement = Placement.from_server_sets(1, 3, {0: [0, 1, 2]})
        report = analyze_placement(instance, placement)
        assert report.hit_ratio == pytest.approx(1 / 3)
        assert report.unserved_uncached == 0.0
        assert report.unserved_unreachable == pytest.approx(2 / 3)

    def test_jain_fairness_bounds(self, tight_scenario):
        result = TrimCachingGen().solve(tight_scenario.instance)
        report = analyze_placement(tight_scenario.instance, result.placement)
        assert 0.0 < report.jain_fairness <= 1.0

    def test_jain_perfect_when_equal(self, tiny_instance):
        placement = Placement(np.ones((2, 3), dtype=bool))
        report = analyze_placement(tiny_instance, placement)
        assert report.jain_fairness == pytest.approx(1.0)

    def test_table_renders(self, tight_scenario):
        result = TrimCachingGen().solve(tight_scenario.instance)
        report = analyze_placement(tight_scenario.instance, result.placement)
        table = report.to_table()
        assert "Placement diagnostics" in table
        assert "Jain fairness" in table
