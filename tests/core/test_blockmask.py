"""Tests for the dense block-membership index and server block cache."""

import numpy as np
import pytest

from repro.core.blockmask import BlockMaskIndex, ServerBlockCache
from repro.core.placement import PlacementInstance
from repro.models.blocks import ParameterBlock
from repro.models.library import ModelLibrary
from repro.models.model import Model
from repro.utils.units import MB


def random_instance(rng, num_models=8, num_blocks=20, num_servers=3):
    blocks = [
        ParameterBlock(b, int(rng.integers(1, 64))) for b in range(num_blocks)
    ]
    models = []
    for i in range(num_models):
        count = int(rng.integers(1, 6))
        chosen = sorted(
            set(int(x) for x in rng.integers(0, num_blocks, size=count))
        )
        models.append(Model(i, tuple(chosen)))
    library = ModelLibrary(blocks, models)
    demand = rng.random((4, num_models)) + 0.01
    feasible = rng.random((num_servers, 4, num_models)) < 0.6
    capacities = [int(rng.integers(0, 400)) for _ in range(num_servers)]
    return PlacementInstance(library, demand, feasible, capacities)


class TestBlockMaskIndex:
    def test_membership_matches_model_blocks(self, tiny_instance):
        index = tiny_instance.block_index
        for model_index in range(tiny_instance.num_models):
            mask = index.mask_of(model_index)
            assert index.ids_from_mask(mask) == tiny_instance.model_blocks[
                model_index
            ]

    def test_model_sizes_match_library(self, tiny_instance):
        index = tiny_instance.block_index
        assert np.array_equal(index.model_sizes, tiny_instance.model_sizes)

    def test_marginal_sizes_match_set_walk(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            instance = random_instance(rng)
            index = instance.block_index
            cached_ids = set(
                int(b)
                for b in rng.choice(
                    index.block_ids, size=rng.integers(0, 10), replace=False
                )
            )
            cached_mask = index.mask_from_ids(cached_ids)
            vectorised = index.marginal_sizes(cached_mask)
            for model_index in range(instance.num_models):
                expected = instance.marginal_storage(model_index, cached_ids)
                assert vectorised[model_index] == expected
                assert index.marginal_size(model_index, cached_mask) == expected

    def test_union_size_matches_dedup(self):
        rng = np.random.default_rng(1)
        for _ in range(25):
            instance = random_instance(rng)
            index = instance.block_index
            subset = [
                int(i)
                for i in rng.choice(
                    instance.num_models,
                    size=rng.integers(0, instance.num_models + 1),
                    replace=False,
                )
            ]
            assert index.union_size(subset) == instance.dedup_storage(subset)

    def test_block_index_cached_on_instance(self, tiny_instance):
        assert tiny_instance.block_index is tiny_instance.block_index


class TestServerBlockCache:
    def test_incremental_matches_set_walk(self):
        """A random placement sequence keeps masks/used/extras exact."""
        rng = np.random.default_rng(2)
        for _ in range(20):
            instance = random_instance(rng)
            index = instance.block_index
            cache = ServerBlockCache(index, instance.num_servers)
            reference_blocks = [set() for _ in range(instance.num_servers)]
            placed = [[] for _ in range(instance.num_servers)]
            for _ in range(12):
                server = int(rng.integers(0, instance.num_servers))
                model_index = int(rng.integers(0, instance.num_models))
                expected_extra = instance.marginal_storage(
                    model_index, reference_blocks[server]
                )
                assert cache.marginal(server, model_index) == expected_extra
                added = cache.add(server, model_index)
                assert added == expected_extra
                reference_blocks[server] |= instance.model_blocks[model_index]
                placed[server].append(model_index)
                assert cache.used[server] == instance.dedup_storage(
                    placed[server]
                )
                row = cache.marginal_row(server)
                for other in range(instance.num_models):
                    assert row[other] == instance.marginal_storage(
                        other, reference_blocks[server]
                    )

    def test_add_is_idempotent(self, tiny_instance):
        cache = ServerBlockCache(tiny_instance.block_index, 2)
        first = cache.add(0, 0)
        assert first == 15 * MB
        assert cache.add(0, 0) == 0
        assert cache.used[0] == 15 * MB

    def test_shared_block_discount(self, tiny_instance):
        # Models 0 and 1 share the 10 MB base block.
        cache = ServerBlockCache(tiny_instance.block_index, 2)
        cache.add(0, 0)
        assert cache.marginal(0, 1) == 5 * MB
        assert cache.add(0, 1) == 5 * MB
        assert cache.used[0] == 20 * MB
