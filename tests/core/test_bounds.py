"""Tests for the approximation-bound calculators."""

import pytest
from hypothesis import given, settings

from repro.core.bounds import (
    gamma_bound,
    gen_guarantee,
    max_models_per_server,
    spec_guarantee,
)
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.gen import TrimCachingGen
from repro.errors import ConfigurationError

from tests.core.test_submodular import small_instances


class TestSpecGuarantee:
    def test_values(self):
        assert spec_guarantee(0.0) == 0.5
        assert spec_guarantee(0.1) == pytest.approx(0.45)
        assert spec_guarantee(1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spec_guarantee(-0.1)
        with pytest.raises(ConfigurationError):
            spec_guarantee(1.1)


class TestGammaBound:
    def test_tiny_instance(self, tiny_instance):
        # Server 0 (20 MB): cheapest specific footprints are 5+5 MB, then
        # model 2's 10 MB -> all three "fit" optimistically. Server 1
        # (10 MB): two 5 MB specifics fit.
        assert max_models_per_server(tiny_instance, 0) == 3
        assert max_models_per_server(tiny_instance, 1) == 2
        assert gamma_bound(tiny_instance) == 5

    def test_gamma_upper_bounds_any_feasible_placement(self, tight_scenario):
        instance = tight_scenario.instance
        gen = TrimCachingGen().solve(instance)
        assert gen.placement.total_placements() <= gamma_bound(instance)

    @given(small_instances())
    @settings(max_examples=30, deadline=None)
    def test_theorem_3_bound_holds(self, instance):
        """U(greedy) >= U(opt)/Γ with the (over-estimated) Γ."""
        greedy = TrimCachingGen().solve(instance)
        optimal = ExhaustiveSearch().solve(instance)
        guarantee = gen_guarantee(instance)
        assert greedy.hit_ratio >= guarantee * optimal.hit_ratio - 1e-9

    def test_zero_capacity_gives_zero_gamma(self, tiny_library):
        import numpy as np

        from tests.conftest import make_instance

        instance = make_instance(
            tiny_library,
            np.full((1, 3), 0.1),
            np.ones((1, 1, 3), dtype=bool),
            [0],
        )
        assert gamma_bound(instance) == 0
        assert gen_guarantee(instance) == 0.0

    def test_guarantee_shrinks_with_scale(self, tiny_instance, tight_scenario):
        """Theorem 3's point: the bound degrades as the instance grows."""
        assert gen_guarantee(tight_scenario.instance) <= gen_guarantee(
            tiny_instance
        )
