"""Tests for Algorithm-2 machinery: combinations and knapsack backends."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp import (
    KNAPSACK_BACKENDS,
    ValueDpTables,
    enumerate_shared_combinations,
    knapsack_best_first,
    knapsack_branch_and_bound,
    knapsack_value_dp,
    knapsack_weight_dp,
)
from repro.errors import SolverError
from repro.models.blocks import ParameterBlock
from repro.models.finetune import FineTuner, make_resnet_root
from repro.models.library import ModelLibrary
from repro.models.model import Model
from repro.data.resnet import RESNET18


def brute_force_knapsack(values, weights, capacity):
    """Reference optimum by full enumeration."""
    best = 0.0
    n = len(values)
    for r in range(n + 1):
        for subset in itertools.combinations(range(n), r):
            weight = sum(weights[i] for i in subset)
            if weight <= capacity:
                best = max(best, sum(values[i] for i in subset))
    return best


knapsack_instances = st.tuples(
    st.lists(st.floats(0.01, 10.0), min_size=1, max_size=10),
    st.lists(st.integers(0, 50), min_size=1, max_size=10),
    st.integers(0, 120),
).map(
    lambda t: (
        t[0][: min(len(t[0]), len(t[1]))],
        t[1][: min(len(t[0]), len(t[1]))],
        t[2],
    )
)


class TestBranchAndBound:
    @given(knapsack_instances)
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, instance):
        values, weights, capacity = instance
        best, selected = knapsack_branch_and_bound(values, weights, capacity)
        assert best == pytest.approx(brute_force_knapsack(values, weights, capacity))
        assert sum(weights[i] for i in selected) <= capacity
        assert best == pytest.approx(sum(values[i] for i in selected))

    def test_empty(self):
        assert knapsack_branch_and_bound([], [], 10) == (0.0, [])

    def test_zero_capacity(self):
        best, selected = knapsack_branch_and_bound([5.0], [3], 0)
        assert best == 0.0 and selected == []

    def test_zero_weight_items_always_taken(self):
        best, selected = knapsack_branch_and_bound([1.0, 2.0], [0, 10], 5)
        assert best == pytest.approx(1.0)
        assert selected == [0]


#: Instances that include zero-weight and zero-value edge items, so the
#: density sort's ``max(weight, 1e-12)`` guard and the positive-value
#: filter are both exercised. Values are exact quarter multiples: subset
#: sums are then float-exact, so equal-value optima are *exact* ties
#: (stressing the preorder tie-break) and strict improvements are
#: >= 0.25 — far above the DFS's 1e-12 pruning slack, keeping the
#: documented sub-slack divergence corner out of scope.
edge_knapsack_instances = st.tuples(
    st.lists(st.integers(0, 40).map(lambda n: n / 4.0), min_size=1, max_size=10),
    st.lists(st.integers(0, 50), min_size=1, max_size=10),
    st.integers(0, 120),
).map(
    lambda t: (
        t[0][: min(len(t[0]), len(t[1]))],
        t[1][: min(len(t[0]), len(t[1]))],
        t[2],
    )
)


class TestBestFirst:
    @given(knapsack_instances)
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, instance):
        values, weights, capacity = instance
        best, selected = knapsack_best_first(values, weights, capacity)
        assert best == pytest.approx(brute_force_knapsack(values, weights, capacity))
        assert sum(weights[i] for i in selected) <= capacity
        assert best == pytest.approx(sum(values[i] for i in selected))

    @given(edge_knapsack_instances)
    @settings(max_examples=150, deadline=None)
    def test_selection_identical_to_dfs(self, instance):
        """Best-first must return the *same selection* as the depth-first
        reference, not merely the same value — the Spec fallback chain
        relies on that for byte-identical placements."""
        values, weights, capacity = instance
        dfs_value, dfs_set = knapsack_branch_and_bound(values, weights, capacity)
        bf_value, bf_set = knapsack_best_first(values, weights, capacity)
        assert bf_set == dfs_set
        assert bf_value == dfs_value

    @given(edge_knapsack_instances)
    @settings(max_examples=100, deadline=None)
    def test_value_dp_epsilon_floor_consistency(self, instance):
        """On edge instances (zero weights/values allowed) the ε-rounded
        DP keeps its (1-ε) guarantee against the best-first optimum."""
        values, weights, capacity = instance
        optimum, _ = knapsack_best_first(values, weights, capacity)
        approx, selected = knapsack_value_dp(values, weights, capacity, 0.1)
        assert sum(weights[i] for i in selected) <= capacity
        assert approx >= (1 - 0.1) * optimum - 1e-9

    def test_empty(self):
        assert knapsack_best_first([], [], 10) == (0.0, [])

    def test_zero_capacity(self):
        best, selected = knapsack_best_first([5.0], [3], 0)
        assert best == 0.0 and selected == []

    def test_zero_weight_items_always_taken(self):
        best, selected = knapsack_best_first([1.0, 2.0], [0, 10], 5)
        assert best == pytest.approx(1.0)
        assert selected == [0]

    def test_node_budget_enforced(self):
        # Identical densities defeat the LP bound, forcing exploration.
        values = [1.0] * 30
        weights = [2] * 30
        with pytest.raises(SolverError):
            knapsack_best_first(values, weights, 29, max_nodes=10)

    def test_registered_backend(self):
        assert KNAPSACK_BACKENDS["best_first"] is knapsack_best_first

    def test_validation(self):
        with pytest.raises(SolverError):
            knapsack_best_first([1.0], [1, 2], 5)
        with pytest.raises(SolverError):
            knapsack_best_first([-1.0], [1], 5)


class TestValueDpTables:
    @given(edge_knapsack_instances)
    @settings(max_examples=100, deadline=None)
    def test_identical_to_uncached_solver(self, instance):
        """The memoised tables replicate ``knapsack_value_dp`` exactly:
        same value, same selection, for every instance."""
        values, weights, capacity = instance
        tables = ValueDpTables(epsilon=0.1)
        expected = knapsack_value_dp(values, weights, capacity, 0.1)
        assert tables.solve(values, weights, capacity) == expected
        # Second call is a cache hit and still byte-identical.
        assert tables.solve(values, weights, capacity) == expected

    def test_hit_miss_accounting(self):
        tables = ValueDpTables(epsilon=0.1)
        tables.solve([1.0, 2.0], [1, 2], 3)
        assert (tables.hits, tables.misses) == (0, 1)
        tables.solve([1.0, 2.0], [1, 2], 3)
        assert (tables.hits, tables.misses) == (1, 1)
        # A different capacity that keeps the same filtered item set
        # reuses the fill (the table is capacity-independent).
        tables.solve([1.0, 2.0], [1, 2], 2)
        assert (tables.hits, tables.misses) == (2, 1)
        # Capacity 1 filters out the weight-2 item: a new key.
        tables.solve([1.0, 2.0], [1, 2], 1)
        assert (tables.hits, tables.misses) == (2, 2)

    def test_capacity_variation_matches_uncached(self):
        values = [3.0, 4.0, 5.0, 6.0]
        weights = [2, 3, 4, 5]
        tables = ValueDpTables(epsilon=0.1)
        for capacity in range(0, 15):
            assert tables.solve(values, weights, capacity) == knapsack_value_dp(
                values, weights, capacity, 0.1
            )

    def test_blown_table_raises_and_is_cached(self):
        tables = ValueDpTables(epsilon=0.001, max_states=100)
        values = [1e-9] + [1.0] * 10
        weights = [1] * 11
        with pytest.raises(SolverError):
            tables.solve(values, weights, 11)
        # Repeat raises from the cached marker (no refill): miss stays 1.
        with pytest.raises(SolverError):
            tables.solve(values, weights, 11)
        assert (tables.hits, tables.misses) == (1, 1)

    def test_epsilon_zero_rejected(self):
        with pytest.raises(SolverError):
            ValueDpTables(epsilon=0.0)

    def test_validation_matches_uncached(self):
        tables = ValueDpTables(epsilon=0.1)
        with pytest.raises(SolverError):
            tables.solve([1.0], [1, 2], 5)
        with pytest.raises(SolverError):
            tables.solve([-1.0], [1], 5)
        with pytest.raises(SolverError):
            tables.solve([1.0], [-1], 5)
        with pytest.raises(SolverError):
            tables.solve([1.0], [1], -5)

    def test_max_entries_bounds_cache(self):
        tables = ValueDpTables(epsilon=0.1, max_entries=2)
        for index in range(5):
            tables.solve([1.0 + index], [1], 2)
        assert len(tables._tables) == 2


class TestValueDp:
    @given(knapsack_instances)
    @settings(max_examples=150, deadline=None)
    def test_fptas_guarantee(self, instance):
        values, weights, capacity = instance
        epsilon = 0.1
        optimum = brute_force_knapsack(values, weights, capacity)
        best, selected = knapsack_value_dp(values, weights, capacity, epsilon)
        assert sum(weights[i] for i in selected) <= capacity
        assert best >= (1 - epsilon) * optimum - 1e-9

    def test_small_epsilon_is_optimal(self):
        values = [3.0, 4.0, 5.0]
        weights = [2, 3, 4]
        best, _ = knapsack_value_dp(values, weights, 6, epsilon=0.01)
        assert best == pytest.approx(brute_force_knapsack(values, weights, 6))

    def test_epsilon_zero_rejected(self):
        with pytest.raises(SolverError):
            knapsack_value_dp([1.0], [1], 1, epsilon=0.0)

    def test_state_blowup_guarded(self):
        # Huge value spread at tiny epsilon exceeds max_states.
        values = [1e-9] + [1.0] * 10
        with pytest.raises(SolverError):
            knapsack_value_dp(values, [1] * 11, 11, epsilon=0.001, max_states=100)

    def test_selection_consistent(self):
        best, selected = knapsack_value_dp([2.0, 3.0], [1, 1], 2, epsilon=0.1)
        assert sorted(selected) == [0, 1]
        assert best == pytest.approx(5.0)


class TestWeightDp:
    @given(knapsack_instances)
    @settings(max_examples=150, deadline=None)
    def test_exact_with_unit_quantum(self, instance):
        values, weights, capacity = instance
        best, selected = knapsack_weight_dp(values, weights, capacity, quantum=1)
        assert best == pytest.approx(brute_force_knapsack(values, weights, capacity))
        assert sum(weights[i] for i in selected) <= capacity

    def test_quantisation_is_conservative(self):
        # Item of weight 11 ceiled to 20 at quantum 10 no longer fits 15.
        best, selected = knapsack_weight_dp([5.0], [11], 15, quantum=10)
        assert best == 0.0 and selected == []

    def test_invalid_quantum(self):
        with pytest.raises(SolverError):
            knapsack_weight_dp([1.0], [1], 1, quantum=0)

    def test_state_blowup_guarded(self):
        with pytest.raises(SolverError):
            knapsack_weight_dp([1.0] * 10, [1] * 10, 10**9, quantum=1, max_states=100)


class TestBackendAgreement:
    @given(knapsack_instances)
    @settings(max_examples=60, deadline=None)
    def test_all_backends_feasible_and_ordered(self, instance):
        values, weights, capacity = instance
        exact, _ = knapsack_branch_and_bound(values, weights, capacity)
        best_first, _ = knapsack_best_first(values, weights, capacity)
        approx, _ = knapsack_value_dp(values, weights, capacity, 0.1)
        weight_exact, _ = knapsack_weight_dp(values, weights, capacity, quantum=1)
        assert approx <= exact + 1e-9
        assert weight_exact == pytest.approx(exact)
        assert best_first == exact


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(SolverError):
            knapsack_branch_and_bound([1.0], [1, 2], 5)

    def test_negative_inputs(self):
        with pytest.raises(SolverError):
            knapsack_branch_and_bound([-1.0], [1], 5)
        with pytest.raises(SolverError):
            knapsack_branch_and_bound([1.0], [-1], 5)
        with pytest.raises(SolverError):
            knapsack_branch_and_bound([1.0], [1], -5)


# ----------------------------------------------------------------------
# Combination enumeration
# ----------------------------------------------------------------------
def chain_library():
    """Two roots with nested prefix sharing (the special-case shape)."""
    tuner = FineTuner()
    root = make_resnet_root(RESNET18)
    tuner.freeze_bottom(root, 30, name="a")
    tuner.freeze_bottom(root, 30, name="a2")
    # Depth-35 prefixes are shared only because two models freeze them.
    tuner.freeze_bottom(root, 35, name="b")
    tuner.freeze_bottom(root, 35, name="b2")
    return tuner.build()


def non_nested_library():
    """Two models with partially overlapping shared sets (not a chain)."""
    blocks = [ParameterBlock(i, 10) for i in range(4)]
    models = [
        Model(0, (0, 1)),
        Model(1, (1, 2)),
        Model(2, (0, 2, 3)),
    ]
    return ModelLibrary(blocks, models)


class TestEnumerateCombinations:
    def test_no_sharing_single_empty_combo(self, tiny_library):
        sub = tiny_library.subset([0, 2])  # removes all sharing
        combos = enumerate_shared_combinations(sub)
        assert len(combos) == 1
        assert combos[0].blocks == frozenset()
        assert combos[0].size_bytes == 0

    def test_prefix_mode_counts_chain_levels(self):
        library = chain_library()
        combos = enumerate_shared_combinations(library, mode="prefix")
        # One chain with two distinct prefixes (30 and 35) -> 3 combos.
        assert len(combos) == 3
        sizes = sorted(len(c.blocks) for c in combos)
        assert sizes == [0, 30, 35]

    def test_exhaustive_mode_counts_subsets(self):
        library = non_nested_library()
        shared = len(library.shared_block_ids)
        combos = enumerate_shared_combinations(library, mode="exhaustive")
        assert len(combos) == 2**shared

    def test_auto_falls_back_for_non_nested(self):
        library = non_nested_library()
        combos = enumerate_shared_combinations(library, mode="auto")
        assert len(combos) == 2 ** len(library.shared_block_ids)

    def test_prefix_mode_rejects_non_nested(self):
        with pytest.raises(SolverError):
            enumerate_shared_combinations(non_nested_library(), mode="prefix")

    def test_max_combinations_guard(self):
        library = chain_library()
        with pytest.raises(SolverError):
            enumerate_shared_combinations(library, max_combinations=2)

    def test_unknown_mode(self):
        with pytest.raises(SolverError):
            enumerate_shared_combinations(chain_library(), mode="magic")

    def test_combo_sizes_correct(self):
        library = chain_library()
        combos = enumerate_shared_combinations(library, mode="prefix")
        for combo in combos:
            assert combo.size_bytes == library.blocks_size(combo.blocks)
