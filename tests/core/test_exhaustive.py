"""Tests for the exhaustive optimal search."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.exhaustive import ExhaustiveSearch
from repro.core.objective import hit_ratio, placement_is_feasible
from repro.core.placement import Placement
from repro.errors import SolverError

from tests.core.test_submodular import small_instances


def true_brute_force(instance):
    """Reference optimum over ALL feasible placements (exponential)."""
    num_servers = instance.num_servers
    num_models = instance.num_models
    best = 0.0
    per_server_choices = []
    for server in range(num_servers):
        feasible_subsets = []
        for r in range(num_models + 1):
            for subset in itertools.combinations(range(num_models), r):
                if instance.dedup_storage(subset) <= instance.capacities[server]:
                    feasible_subsets.append(subset)
        per_server_choices.append(feasible_subsets)
    for combo in itertools.product(*per_server_choices):
        placement = Placement.from_server_sets(
            num_servers, num_models, dict(enumerate(combo))
        )
        best = max(best, hit_ratio(instance, placement))
    return best


class TestOptimality:
    @given(small_instances())
    @settings(max_examples=25, deadline=None)
    def test_matches_true_brute_force(self, instance):
        result = ExhaustiveSearch().solve(instance)
        assert result.hit_ratio == pytest.approx(true_brute_force(instance))
        assert placement_is_feasible(instance, result.placement)

    def test_tiny_instance_optimum(self, tiny_instance):
        # Best: models 0+1 on server 0 (dedup) + model 2 on server 1 = 1.0.
        result = ExhaustiveSearch().solve(tiny_instance)
        assert result.hit_ratio == pytest.approx(1.0)

    def test_stats(self, tiny_instance):
        result = ExhaustiveSearch().solve(tiny_instance)
        assert len(result.stats["subsets_per_server"]) == 2
        assert result.stats["combinations"] >= 1


class TestGuards:
    def test_product_guard(self, tight_scenario):
        with pytest.raises(SolverError):
            ExhaustiveSearch(max_product=1).solve(tight_scenario.instance)

    def test_subset_guard(self, tight_scenario):
        with pytest.raises(SolverError):
            ExhaustiveSearch(max_subsets_per_server=1).solve(
                tight_scenario.instance
            )


class TestEdgeCases:
    def test_zero_capacity_everywhere(self, tiny_library):
        from tests.conftest import make_instance

        instance = make_instance(
            tiny_library,
            np.full((2, 3), 0.1),
            np.ones((2, 2, 3), dtype=bool),
            [0, 0],
        )
        result = ExhaustiveSearch().solve(instance)
        assert result.hit_ratio == 0.0
        assert result.placement.total_placements() == 0

    def test_single_server(self, tiny_library):
        from tests.conftest import make_instance

        instance = make_instance(
            tiny_library,
            np.full((1, 3), 0.2),
            np.ones((1, 1, 3), dtype=bool),
            [20_000_000],
        )
        result = ExhaustiveSearch().solve(instance)
        assert set(result.placement.models_on(0)) == {0, 1}
