"""Tests for the extra baselines (random, top-popularity)."""

import numpy as np
import pytest

from repro.core.extras import RandomPlacement, TopPopularityPlacement
from repro.core.gen import TrimCachingGen
from repro.core.objective import placement_is_feasible


class TestRandomPlacement:
    def test_feasible(self, tight_scenario):
        result = RandomPlacement(seed=0).solve(tight_scenario.instance)
        assert placement_is_feasible(tight_scenario.instance, result.placement)

    def test_reproducible(self, tight_scenario):
        a = RandomPlacement(seed=5).solve(tight_scenario.instance)
        b = RandomPlacement(seed=5).solve(tight_scenario.instance)
        assert a.placement == b.placement

    def test_knapsack_mode_feasible(self, tight_scenario):
        result = RandomPlacement(seed=0, deduplicate=False).solve(
            tight_scenario.instance
        )
        assert placement_is_feasible(
            tight_scenario.instance, result.placement, deduplicate=False
        )

    def test_fills_capacity(self, tiny_instance):
        result = RandomPlacement(seed=1).solve(tiny_instance)
        # With everything feasible and loose per-model sizes, the random
        # policy caches at least one model per server.
        for server in range(tiny_instance.num_servers):
            assert result.placement.models_on(server)


class TestTopPopularity:
    def test_feasible(self, tight_scenario):
        result = TopPopularityPlacement().solve(tight_scenario.instance)
        assert placement_is_feasible(tight_scenario.instance, result.placement)

    def test_caches_by_aggregate_demand(self, tiny_instance):
        result = TopPopularityPlacement().solve(tiny_instance)
        popularity = tiny_instance.demand.sum(axis=0)
        best = int(np.argmax(popularity))
        # The most popular model is cached somewhere.
        assert result.placement.servers_with(best)

    def test_gen_dominates_baselines(self, tight_scenario):
        """Sanity: the optimised greedy beats both naive baselines."""
        gen = TrimCachingGen().solve(tight_scenario.instance)
        top = TopPopularityPlacement().solve(tight_scenario.instance)
        rand = RandomPlacement(seed=0).solve(tight_scenario.instance)
        assert gen.hit_ratio >= top.hit_ratio - 1e-9
        assert gen.hit_ratio >= rand.hit_ratio - 1e-9
