"""Tests for TrimCaching Gen (Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.bounds import gamma_bound
from repro.core.gen import TrimCachingGen
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.objective import hit_ratio, placement_is_feasible, storage_used
from repro.core.placement import Placement

from tests.core.test_submodular import small_instances


class TestBasicBehaviour:
    def test_respects_capacity(self, tiny_instance):
        result = TrimCachingGen().solve(tiny_instance)
        assert placement_is_feasible(tiny_instance, result.placement)

    def test_hit_ratio_matches_placement(self, tiny_instance):
        result = TrimCachingGen().solve(tiny_instance)
        assert result.hit_ratio == pytest.approx(
            hit_ratio(tiny_instance, result.placement)
        )

    def test_exploits_sharing_on_tiny_instance(self, tiny_instance):
        # Server 0 (20 MB) can hold models 0 AND 1 only via dedup; the
        # greedy must find that.
        result = TrimCachingGen().solve(tiny_instance)
        on_zero = set(result.placement.models_on(0))
        assert on_zero == {0, 1}
        assert storage_used(tiny_instance, result.placement, 0) == 20_000_000

    def test_zero_capacity_places_nothing(self, tiny_library):
        import numpy as np

        from tests.conftest import make_instance

        instance = make_instance(
            tiny_library,
            np.full((2, 3), 0.1),
            np.ones((2, 2, 3), dtype=bool),
            [0, 0],
        )
        result = TrimCachingGen().solve(instance)
        assert result.placement.total_placements() == 0
        assert result.hit_ratio == 0.0

    def test_no_feasible_requests(self, tiny_library):
        from tests.conftest import make_instance

        instance = make_instance(
            tiny_library,
            np.full((2, 3), 0.1),
            np.zeros((2, 2, 3), dtype=bool),
            [10**9, 10**9],
        )
        result = TrimCachingGen().solve(instance)
        assert result.hit_ratio == 0.0

    def test_stats_recorded(self, tiny_instance):
        result = TrimCachingGen().solve(tiny_instance)
        assert result.stats["greedy_steps"] == result.placement.total_placements()
        assert result.solver == "TrimCaching Gen"


class TestLazyEqualsNaive:
    @given(small_instances())
    @settings(max_examples=50, deadline=None)
    def test_identical_hit_ratio(self, instance):
        lazy = TrimCachingGen(accelerated=True).solve(instance)
        naive = TrimCachingGen(accelerated=False).solve(instance)
        assert lazy.hit_ratio == pytest.approx(naive.hit_ratio, abs=1e-12)

    def test_identical_placement_on_scenarios(self, tight_scenario):
        lazy = TrimCachingGen(accelerated=True).solve(tight_scenario.instance)
        naive = TrimCachingGen(accelerated=False).solve(tight_scenario.instance)
        assert lazy.placement == naive.placement


class TestGreedyQuality:
    @given(small_instances())
    @settings(max_examples=30, deadline=None)
    def test_within_gamma_bound_of_optimal(self, instance):
        """Theorem 3: U(greedy) >= U(optimal) / Γ."""
        greedy = TrimCachingGen().solve(instance)
        optimal = ExhaustiveSearch().solve(instance)
        gamma = gamma_bound(instance)
        if gamma > 0:
            assert greedy.hit_ratio >= optimal.hit_ratio / gamma - 1e-9
        assert greedy.hit_ratio <= optimal.hit_ratio + 1e-9

    def test_near_optimal_on_tight_scenario(self, tight_scenario):
        """Greedy stays within a constant factor on a realistic instance.

        (The paper's Fig. 6(a) observes a ~1.3% gap on its own setting;
        our deliberately tight fixture is harder — the greedy lands at
        ~84% of optimal — so assert a loose 3/4 bound.)
        """
        greedy = TrimCachingGen().solve(tight_scenario.instance)
        optimal = ExhaustiveSearch().solve(tight_scenario.instance)
        assert greedy.hit_ratio >= 0.75 * optimal.hit_ratio


class TestExactCapacityZeroMarginal:
    """Regression: a server at exact capacity must still cache a model
    whose blocks are already fully cached (zero marginal bytes).

    The naive scan skips exhausted servers as an optimisation; skipping
    on ``remaining == 0`` alone would wrongly drop these free, legal,
    positive-gain placements.
    """

    @pytest.fixture
    def nested_instance(self):
        from repro.models.blocks import ParameterBlock
        from repro.models.library import ModelLibrary
        from repro.models.model import Model
        from tests.conftest import make_instance

        # Model 1's blocks are a subset of model 0's, so after caching
        # model 0 the marginal cost of model 1 is exactly zero.
        blocks = [ParameterBlock(0, 70), ParameterBlock(1, 30)]
        models = [Model(0, (0, 1)), Model(1, (0,))]
        library = ModelLibrary(blocks, models)
        demand = np.array([[0.9, 0.1]])
        feasible = np.ones((1, 1, 2), dtype=bool)
        # Capacity exactly fits model 0; nothing is left afterwards.
        return make_instance(library, demand, feasible, [100])

    @pytest.mark.parametrize("accelerated", [True, False])
    def test_zero_marginal_cacheable_at_exact_capacity(
        self, nested_instance, accelerated
    ):
        result = TrimCachingGen(accelerated=accelerated).solve(nested_instance)
        assert set(result.placement.models_on(0)) == {0, 1}
        assert result.hit_ratio == pytest.approx(1.0)
        assert storage_used(nested_instance, result.placement, 0) == 100

    def test_zero_capacity_server_with_free_model_stays_empty(self):
        """remaining == 0 from the start and no cached blocks: nothing
        has zero marginal cost, so the skip must engage."""
        from repro.models.blocks import ParameterBlock
        from repro.models.library import ModelLibrary
        from repro.models.model import Model
        from tests.conftest import make_instance

        blocks = [ParameterBlock(0, 10)]
        library = ModelLibrary(blocks, [Model(0, (0,))])
        demand = np.array([[1.0]])
        feasible = np.ones((1, 1, 1), dtype=bool)
        instance = make_instance(library, demand, feasible, [0])
        for accelerated in (True, False):
            result = TrimCachingGen(accelerated=accelerated).solve(instance)
            assert result.placement.total_placements() == 0


class TestFillZeroGain:
    def test_fills_leftover_capacity(self, tiny_instance):
        plain = TrimCachingGen(fill_zero_gain=False).solve(tiny_instance)
        filled = TrimCachingGen(fill_zero_gain=True).solve(tiny_instance)
        assert filled.placement.total_placements() >= plain.placement.total_placements()
        assert placement_is_feasible(tiny_instance, filled.placement)
        # Filling never changes the objective.
        assert filled.hit_ratio == pytest.approx(plain.hit_ratio)

    def test_literal_stopping_rule(self, tiny_instance):
        """After filling, no server can cache any further model."""
        result = TrimCachingGen(fill_zero_gain=True).solve(tiny_instance)
        for server in range(tiny_instance.num_servers):
            cached = set(result.placement.models_on(server))
            blocks = set()
            for model_index in cached:
                blocks |= tiny_instance.model_blocks[model_index]
            used = tiny_instance.dedup_storage(cached)
            remaining = int(tiny_instance.capacities[server]) - used
            for model_index in range(tiny_instance.num_models):
                if model_index in cached:
                    continue
                assert tiny_instance.marginal_storage(model_index, blocks) > remaining


class TestFillZeroGainPort:
    """The ServerBlockCache-based filler must replay the seed's set walk."""

    @staticmethod
    def _fill_remaining_set_walk(instance, placement):
        """The pre-port filler (Python set walks), kept as the oracle."""
        cached_blocks = []
        used = []
        for server in range(instance.num_servers):
            blocks = set()
            for model_index in placement.models_on(server):
                blocks |= instance.model_blocks[model_index]
            cached_blocks.append(blocks)
            used.append(instance.dedup_storage(placement.models_on(server)))
        for server in range(instance.num_servers):
            remaining = int(instance.capacities[server] - used[server])
            for model_index in range(instance.num_models):
                if placement.contains(server, model_index):
                    continue
                extra = instance.marginal_storage(
                    model_index, cached_blocks[server]
                )
                if extra <= remaining:
                    placement.add(server, model_index)
                    cached_blocks[server] |= instance.model_blocks[model_index]
                    remaining -= extra

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_identical_fill(self, instance):
        base = TrimCachingGen(fill_zero_gain=False).solve(instance).placement
        ported = base.copy()
        TrimCachingGen(fill_zero_gain=True)._fill_remaining(instance, ported)
        oracle = base.copy()
        self._fill_remaining_set_walk(instance, oracle)
        assert ported == oracle
        assert placement_is_feasible(instance, ported)
