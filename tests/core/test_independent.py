"""Tests for the Independent Caching baseline."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.gen import TrimCachingGen
from repro.core.independent import IndependentCaching
from repro.core.objective import (
    hit_ratio,
    independent_storage_used,
    placement_is_feasible,
)

from tests.core.test_submodular import small_instances


class TestBasics:
    def test_knapsack_storage_respected(self, tiny_instance):
        result = IndependentCaching().solve(tiny_instance)
        assert placement_is_feasible(
            tiny_instance, result.placement, deduplicate=False
        )

    def test_cannot_exploit_sharing(self, tiny_instance):
        """Server 0 (20 MB) holds models 0+1 only via dedup; Independent
        Caching must fail to co-locate them."""
        result = IndependentCaching().solve(tiny_instance)
        on_zero = result.placement.models_on(0)
        assert independent_storage_used(tiny_instance, result.placement, 0) <= 20e6
        assert set(on_zero) != {0, 1}

    def test_hit_ratio_consistent(self, tiny_instance):
        result = IndependentCaching().solve(tiny_instance)
        assert result.hit_ratio == pytest.approx(
            hit_ratio(tiny_instance, result.placement)
        )

    def test_zero_capacity(self, tiny_library):
        from tests.conftest import make_instance

        instance = make_instance(
            tiny_library,
            np.full((2, 3), 0.1),
            np.ones((2, 2, 3), dtype=bool),
            [0, 0],
        )
        result = IndependentCaching().solve(instance)
        assert result.placement.total_placements() == 0


class TestDominance:
    """TrimCaching with sharing must never lose to Independent Caching."""

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_gen_at_least_as_good(self, instance):
        gen = TrimCachingGen().solve(instance)
        independent = IndependentCaching().solve(instance)
        # Every knapsack-feasible placement is dedup-feasible, and both
        # use the same greedy rule, so Gen can only do better — up to
        # greedy tie-breaking noise, hence a small tolerance.
        assert gen.hit_ratio >= independent.hit_ratio - 0.05

    def test_strictly_better_on_sharing_instance(self, tiny_instance):
        gen = TrimCachingGen().solve(tiny_instance)
        independent = IndependentCaching().solve(tiny_instance)
        assert gen.hit_ratio > independent.hit_ratio

    def test_clear_gap_on_tight_scenario(self, tight_scenario):
        gen = TrimCachingGen().solve(tight_scenario.instance)
        independent = IndependentCaching().solve(tight_scenario.instance)
        assert gen.hit_ratio >= independent.hit_ratio


class TestMaskedArgmaxPort:
    """The masked-argmax engine must replay the seed loop byte for byte
    (the scenario-grid pinning lives in test_reference_equivalence)."""

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_identical_to_reference(self, instance):
        from repro.core.reference import ReferenceIndependent

        new = IndependentCaching().solve(instance)
        ref = ReferenceIndependent().solve(instance)
        assert new.placement == ref.placement
        assert new.hit_ratio == ref.hit_ratio
        assert new.stats["greedy_steps"] == ref.stats["greedy_steps"]

    @given(small_instances())
    @settings(max_examples=25, deadline=None)
    def test_sparse_engine_identical(self, instance):
        dense = IndependentCaching().solve(instance)
        sparse = IndependentCaching(engine="sparse").solve(instance)
        assert dense.placement == sparse.placement
