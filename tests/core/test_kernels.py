"""Tests for the optional compiled kernels (``engine="compiled"``).

Run on a dependency-free install the numpy fallbacks are exercised; with
numba present the jitted paths run instead. Either way the compiled
engine's *placements* must equal the dense engine's — the same pin the
sparse engine carries.
"""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.gen import TrimCachingGen
from repro.core.independent import IndependentCaching
from repro.core.objective import CoverageTracker
from repro.core.placement import PlacementInstance
from repro.core.spec import TrimCachingSpec
from repro.errors import PlacementError


class TestPrefersCompiled:
    def test_compiled_always_prefers(self):
        assert kernels.prefers_compiled("compiled") is True

    def test_dense_and_sparse_never_prefer(self):
        assert kernels.prefers_compiled("dense") is False
        assert kernels.prefers_compiled("sparse") is False

    def test_auto_follows_numba_availability(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMBA", True)
        assert kernels.prefers_compiled("auto") is True
        monkeypatch.setattr(kernels, "HAVE_NUMBA", False)
        assert kernels.prefers_compiled("auto") is False


class TestKernelPrimitives:
    """Each kernel against the plain-numpy expression it replaces."""

    def test_dense_column_gains(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            servers, users = rng.integers(1, 12, size=2)
            feasible = rng.uniform(size=(servers, users)) < 0.5
            weighted = rng.uniform(size=users)
            out = np.empty(servers)
            kernels.dense_column_gains(feasible, weighted, out)
            expected = np.einsum("mk,k->m", feasible, weighted)
            np.testing.assert_allclose(out, expected, rtol=1e-15)

    def test_sparse_column_gains(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            num_servers, num_users = rng.integers(2, 12, size=2)
            nnz = int(rng.integers(0, 30))
            servers = rng.integers(0, num_servers, size=nnz)
            users = rng.integers(0, num_users, size=nnz)
            weighted = rng.uniform(size=num_users)
            out = np.empty(num_servers)
            kernels.sparse_column_gains(servers, users, weighted, out)
            expected = np.bincount(
                servers, weights=weighted[users], minlength=num_servers
            )
            np.testing.assert_allclose(out, expected, rtol=1e-15)

    def _argmax_reference(self, gains, extras, remaining):
        fit = (extras if extras.ndim == 2 else extras[None, :]) <= remaining
        value = np.where(fit, gains, -1.0)
        return int(np.argmax(value))

    def test_masked_argmax_2d_extras(self):
        rng = np.random.default_rng(2)
        for _ in range(50):
            servers, models = rng.integers(1, 10, size=2)
            gains = rng.uniform(0.0, 1.0, size=(servers, models))
            extras = rng.integers(0, 20, size=(servers, models)).astype(np.int64)
            remaining = rng.integers(0, 20, size=(servers, 1)).astype(np.int64)
            fit = np.empty((servers, models), dtype=bool)
            value = np.empty((servers, models))
            flat = kernels.masked_argmax(gains, extras, remaining, fit, value)
            assert flat == self._argmax_reference(gains, extras, remaining)

    def test_masked_argmax_1d_sizes(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            servers, models = rng.integers(1, 10, size=2)
            gains = rng.uniform(0.0, 1.0, size=(servers, models))
            sizes = rng.integers(0, 20, size=models).astype(np.int64)
            remaining = rng.integers(0, 20, size=(servers, 1)).astype(np.int64)
            fit = np.empty((servers, models), dtype=bool)
            value = np.empty((servers, models))
            flat = kernels.masked_argmax(gains, sizes, remaining, fit, value)
            assert flat == self._argmax_reference(gains, sizes, remaining)

    def test_masked_argmax_ties_resolve_row_major_first(self):
        # All-equal gains with everything fitting: index 0 wins, as in
        # np.argmax — the greedy tie-break the seed pins.
        gains = np.ones((3, 4))
        sizes = np.zeros(4, dtype=np.int64)
        remaining = np.ones((3, 1), dtype=np.int64)
        fit = np.empty((3, 4), dtype=bool)
        value = np.empty((3, 4))
        assert kernels.masked_argmax(gains, sizes, remaining, fit, value) == 0

    def test_masked_argmax_nothing_fits(self):
        # Every pair masked to -1: the argmax falls to flat index 0 and
        # the callers' gain<=0 stop condition fires.
        gains = np.ones((2, 2))
        sizes = np.full(2, 10, dtype=np.int64)
        remaining = np.zeros((2, 1), dtype=np.int64)
        fit = np.empty((2, 2), dtype=bool)
        value = np.empty((2, 2))
        assert kernels.masked_argmax(gains, sizes, remaining, fit, value) == 0


class TestCompiledEngineWiring:
    def test_tracker_accepts_compiled(self, tiny_instance):
        tracker = CoverageTracker(tiny_instance, engine="compiled")
        assert tracker.engine == "compiled"

    def test_tracker_auto_resolution(self, tiny_instance, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMBA", True)
        assert CoverageTracker(tiny_instance, engine="auto").engine == "compiled"
        monkeypatch.setattr(kernels, "HAVE_NUMBA", False)
        assert CoverageTracker(tiny_instance, engine="auto").engine == "dense"

    def test_tracker_rejects_unknown(self, tiny_instance):
        with pytest.raises(PlacementError):
            CoverageTracker(tiny_instance, engine="magic")

    def test_solvers_accept_compiled(self):
        assert TrimCachingGen(engine="compiled").engine == "compiled"
        assert IndependentCaching(engine="compiled").engine == "compiled"
        assert TrimCachingSpec(engine="compiled").engine == "compiled"

    def test_compiled_tracker_gains_match_dense(self, tiny_instance):
        dense = CoverageTracker(tiny_instance, engine="dense")
        compiled = CoverageTracker(tiny_instance, engine="compiled")
        np.testing.assert_allclose(
            compiled.gain_matrix_view(), dense.gain_matrix_view(), rtol=1e-12
        )
        dense.mark_served(0, 0)
        compiled.mark_served(0, 0)
        np.testing.assert_allclose(
            compiled.gain_matrix_view(), dense.gain_matrix_view(), rtol=1e-12
        )


class TestCompiledEnginePlacementPin:
    """The compiled engine is pinned at the placement level: identical
    placements (and therefore identical hit-ratio series) to the dense
    engine on dense-primary instances and to the sparse engine on
    sparse-primary ones."""

    @pytest.mark.parametrize(
        "solver_factory",
        [
            lambda engine: TrimCachingGen(engine=engine),
            lambda engine: IndependentCaching(engine=engine),
            lambda engine: TrimCachingSpec(epsilon=0.1, engine=engine),
        ],
        ids=["gen", "independent", "spec"],
    )
    def test_matches_dense_on_scenario(self, tight_scenario, solver_factory):
        instance = tight_scenario.instance
        dense = solver_factory("dense").solve(instance)
        compiled = solver_factory("compiled").solve(instance)
        assert np.array_equal(
            compiled.placement.matrix, dense.placement.matrix
        )
        assert compiled.hit_ratio == dense.hit_ratio

    def test_matches_sparse_on_sparse_primary(self, tight_scenario):
        # Scenario instances are built sparse-primary, so the compiled
        # engine runs the sparse-state fold — pin it to the sparse
        # engine byte-for-byte.
        instance = tight_scenario.instance
        assert instance.is_sparse_primary
        sparse = TrimCachingGen(engine="sparse").solve(instance)
        compiled = TrimCachingGen(engine="compiled").solve(instance)
        assert np.array_equal(
            compiled.placement.matrix, sparse.placement.matrix
        )

    def test_matches_dense_on_dense_instance(self, tiny_instance):
        assert not tiny_instance.is_sparse_primary
        for factory in (
            lambda engine: TrimCachingGen(engine=engine),
            lambda engine: IndependentCaching(engine=engine),
        ):
            dense = factory("dense").solve(tiny_instance)
            compiled = factory("compiled").solve(tiny_instance)
            assert np.array_equal(
                compiled.placement.matrix, dense.placement.matrix
            )
