"""Tests for the objective U(X), storage g_m, and the coverage tracker."""

import numpy as np
import pytest

from repro.core.objective import (
    CoverageTracker,
    hit_ratio,
    independent_storage_used,
    placement_is_feasible,
    served_matrix,
    storage_used,
)
from repro.core.placement import Placement
from repro.errors import PlacementError
from repro.utils.units import MB


class TestHitRatio:
    def test_empty_placement_is_zero(self, tiny_instance):
        assert hit_ratio(tiny_instance, tiny_instance.new_placement()) == 0.0

    def test_full_placement_is_one(self, tiny_instance):
        placement = Placement(np.ones((2, 3), dtype=bool))
        assert hit_ratio(tiny_instance, placement) == pytest.approx(1.0)

    def test_equation_2_by_hand(self, tiny_instance):
        # Cache model 0 on server 0 only: serves p[0,0]+p[1,0] = 0.6 of 2.
        placement = Placement.from_server_sets(2, 3, {0: [0]})
        assert hit_ratio(tiny_instance, placement) == pytest.approx(0.6 / 2.0)

    def test_duplicate_placement_counted_once(self, tiny_instance):
        single = Placement.from_server_sets(2, 3, {0: [0]})
        double = Placement.from_server_sets(2, 3, {0: [0], 1: [0]})
        assert hit_ratio(tiny_instance, double) == pytest.approx(
            hit_ratio(tiny_instance, single)
        )

    def test_respects_feasibility(self, tiny_library):
        demand = np.full((2, 3), 1.0 / 3.0)
        feasible = np.zeros((1, 2, 3), dtype=bool)
        feasible[0, 0, :] = True  # only user 0 reachable
        from tests.conftest import make_instance

        instance = make_instance(tiny_library, demand, feasible, [100 * MB])
        placement = Placement.from_server_sets(1, 3, {0: [0, 1, 2]})
        assert hit_ratio(instance, placement) == pytest.approx(0.5)

    def test_feasibility_override(self, tiny_instance):
        placement = Placement.from_server_sets(2, 3, {0: [0]})
        none_feasible = np.zeros_like(tiny_instance.feasible)
        assert hit_ratio(tiny_instance, placement, none_feasible) == 0.0

    def test_shape_mismatch_rejected(self, tiny_instance):
        bad = Placement(np.zeros((3, 3), dtype=bool))
        with pytest.raises(PlacementError):
            hit_ratio(tiny_instance, bad)
        good = tiny_instance.new_placement()
        with pytest.raises(PlacementError):
            served_matrix(tiny_instance, good, np.zeros((1, 2, 3), dtype=bool))


class TestStorage:
    def test_deduplicated(self, tiny_instance):
        placement = Placement.from_server_sets(2, 3, {0: [0, 1]})
        assert storage_used(tiny_instance, placement, 0) == 20 * MB
        assert storage_used(tiny_instance, placement, 1) == 0

    def test_independent(self, tiny_instance):
        placement = Placement.from_server_sets(2, 3, {0: [0, 1]})
        assert independent_storage_used(tiny_instance, placement, 0) == 30 * MB

    def test_feasibility_dedup_vs_knapsack(self, tiny_instance):
        # Server 0 capacity is 20 MB: models 0+1 fit deduplicated but not
        # under knapsack accounting.
        placement = Placement.from_server_sets(2, 3, {0: [0, 1]})
        assert placement_is_feasible(tiny_instance, placement, deduplicate=True)
        assert not placement_is_feasible(
            tiny_instance, placement, deduplicate=False
        )

    def test_over_capacity_infeasible(self, tiny_instance):
        placement = Placement.from_server_sets(2, 3, {1: [0, 2]})  # 25 MB > 10
        assert not placement_is_feasible(tiny_instance, placement)


class TestCoverageTracker:
    def test_gain_matches_hit_ratio_delta(self, tiny_instance):
        tracker = CoverageTracker(tiny_instance)
        placement = tiny_instance.new_placement()
        for server, model in [(0, 0), (1, 2), (0, 1)]:
            before = hit_ratio(tiny_instance, placement)
            gain_mass = tracker.gain(server, model)
            placement.add(server, model)
            after = hit_ratio(tiny_instance, placement)
            assert gain_mass / tiny_instance.total_demand == pytest.approx(
                after - before
            )
            tracker.mark_served(server, model)

    def test_gain_matrix_matches_scalar_gain(self, tiny_instance):
        tracker = CoverageTracker(tiny_instance)
        tracker.mark_served(0, 0)
        matrix = tracker.gain_matrix()
        for server in range(2):
            for model in range(3):
                assert matrix[server, model] == pytest.approx(
                    tracker.gain(server, model)
                )

    def test_server_gains_row(self, tiny_instance):
        tracker = CoverageTracker(tiny_instance)
        row = tracker.server_gains(1)
        assert row == pytest.approx(
            [tracker.gain(1, model) for model in range(3)]
        )

    def test_marking_served_zeroes_gain(self, tiny_instance):
        tracker = CoverageTracker(tiny_instance)
        tracker.mark_served(0, 1)
        # Everything feasible, so model 1 is now fully served everywhere.
        assert tracker.gain(1, 1) == 0.0

    def test_hit_ratio_accumulates(self, tiny_instance):
        tracker = CoverageTracker(tiny_instance)
        tracker.mark_server_models(0, [0, 1, 2])
        assert tracker.hit_ratio() == pytest.approx(1.0)

    def test_covered_mass(self, tiny_instance):
        tracker = CoverageTracker(tiny_instance)
        assert tracker.covered_mass() == 0.0
        tracker.mark_served(0, 0)
        assert tracker.covered_mass() == pytest.approx(0.6)
