"""Tests for PlacementInstance and Placement."""

import numpy as np
import pytest

from repro.core.placement import Placement, PlacementInstance
from repro.errors import PlacementError
from repro.utils.units import MB


class TestPlacementInstance:
    def test_shapes(self, tiny_instance):
        assert tiny_instance.num_servers == 2
        assert tiny_instance.num_users == 2
        assert tiny_instance.num_models == 3
        assert tiny_instance.total_demand == pytest.approx(2.0)

    def test_index_mapping(self, tiny_instance):
        assert tiny_instance.index_to_model_id == (0, 1, 2)
        assert tiny_instance.index_of(2) == 2
        with pytest.raises(PlacementError):
            tiny_instance.index_of(99)

    def test_index_mapping_non_contiguous_ids(self, tiny_library):
        sub = tiny_library.subset([1, 2])
        demand = np.full((1, 2), 0.5)
        feasible = np.ones((1, 1, 2), dtype=bool)
        instance = PlacementInstance(sub, demand, feasible, [100 * MB])
        assert instance.index_to_model_id == (1, 2)
        assert instance.index_of(2) == 1

    def test_model_sizes(self, tiny_instance):
        assert tiny_instance.model_sizes.tolist() == [15 * MB, 15 * MB, 10 * MB]

    def test_marginal_storage(self, tiny_instance):
        assert tiny_instance.marginal_storage(0, set()) == 15 * MB
        assert tiny_instance.marginal_storage(1, {0}) == 5 * MB

    def test_dedup_storage(self, tiny_instance):
        assert tiny_instance.dedup_storage([0, 1]) == 20 * MB
        assert tiny_instance.dedup_storage([]) == 0

    def test_validation(self, tiny_library):
        good_demand = np.full((2, 3), 0.1)
        good_feasible = np.ones((2, 2, 3), dtype=bool)
        with pytest.raises(PlacementError):
            PlacementInstance(tiny_library, np.ones(3), good_feasible, [1, 1])
        with pytest.raises(PlacementError):
            PlacementInstance(
                tiny_library, good_demand, np.ones((2, 2, 2), dtype=bool), [1, 1]
            )
        with pytest.raises(PlacementError):
            PlacementInstance(tiny_library, good_demand, good_feasible, [1])
        with pytest.raises(PlacementError):
            PlacementInstance(tiny_library, good_demand, good_feasible, [-1, 1])
        with pytest.raises(PlacementError):
            PlacementInstance(
                tiny_library, np.zeros((2, 3)), good_feasible, [1, 1]
            )
        with pytest.raises(PlacementError):
            PlacementInstance(
                tiny_library, -good_demand, good_feasible, [1, 1]
            )

    def test_demand_library_mismatch(self, tiny_library):
        with pytest.raises(PlacementError):
            PlacementInstance(
                tiny_library,
                np.full((2, 4), 0.1),
                np.ones((2, 2, 4), dtype=bool),
                [1, 1],
            )


class TestPlacement:
    def test_add_remove_contains(self, tiny_instance):
        placement = tiny_instance.new_placement()
        assert not placement.contains(0, 1)
        placement.add(0, 1)
        assert placement.contains(0, 1)
        assert placement.models_on(0) == [1]
        assert placement.servers_with(1) == [0]
        placement.remove(0, 1)
        assert placement.total_placements() == 0

    def test_from_server_sets(self):
        placement = Placement.from_server_sets(2, 3, {0: [0, 2], 1: [1]})
        assert placement.models_on(0) == [0, 2]
        assert placement.models_on(1) == [1]

    def test_copy_is_independent(self, tiny_instance):
        placement = tiny_instance.new_placement()
        clone = placement.copy()
        clone.add(0, 0)
        assert placement.total_placements() == 0

    def test_equality(self):
        a = Placement.from_server_sets(1, 2, {0: [1]})
        b = Placement.from_server_sets(1, 2, {0: [1]})
        c = Placement.from_server_sets(1, 2, {0: [0]})
        assert a == b
        assert a != c

    def test_frozen_form_hashable(self):
        placement = Placement.from_server_sets(2, 3, {0: [1], 1: [0, 2]})
        frozen = placement.frozen()
        assert hash(frozen)
        assert frozen[1] == frozenset({0, 2})

    def test_non_2d_rejected(self):
        with pytest.raises(PlacementError):
            Placement(np.zeros(3, dtype=bool))
