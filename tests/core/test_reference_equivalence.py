"""Equivalence of the vectorised solver engine against the seed code.

The seed implementations (pure-Python inner loops) are retained verbatim
in :mod:`repro.core.reference`; these tests pin the vectorised engine to
them:

* the incremental :class:`CoverageTracker` maintains a gain matrix that
  is **bit-identical** to the reference's full einsum recompute;
* ``TrimCachingGen`` — lazy/vectorised and naive — produces placements
  identical to the seed naive greedy (the literal Algorithm 3, whose
  einsum gains define the canonical tie-breaking);
* ``TrimCachingSpec`` matches the seed Spec;
* the vectorised ``knapsack_value_dp`` returns the exact selections of
  the seed DP, including its guard errors.

The randomized sweeps run ≥20 seeded scenario instances each (both
library cases, several capacity regimes).
"""

import numpy as np
import pytest

from repro.core.dp import knapsack_value_dp
from repro.core.gen import TrimCachingGen
from repro.core.independent import IndependentCaching
from repro.core.objective import CoverageTracker
from repro.core.placement import PlacementInstance
from repro.core.reference import (
    ReferenceCoverageTracker,
    ReferenceGen,
    ReferenceIndependent,
    ReferenceSpec,
    reference_knapsack_value_dp,
)
from repro.core.spec import TrimCachingSpec
from repro.errors import SolverError
from repro.models.blocks import ParameterBlock
from repro.models.library import ModelLibrary
from repro.models.model import Model
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario
from repro.utils.units import GB

# 24 scenario instances: 2 library cases x 3 capacity regimes x 4 seeds.
SCENARIO_GRID = [
    (case, storage, seed)
    for case in ("special", "general")
    for storage in (0.06, 0.12, 0.3)
    for seed in (0, 1, 2, 3)
]


def grid_instance(case, storage, seed, feasibility="sparse") -> PlacementInstance:
    config = ScenarioConfig(
        num_servers=6,
        num_users=40,
        num_models=24,
        requests_per_user=10,
        storage_bytes=int(storage * GB),
        library_case=case,
    )
    return build_scenario(config, seed=seed, feasibility=feasibility).instance


def random_tracker_instance(rng) -> PlacementInstance:
    num_models = int(rng.integers(1, 12))
    num_blocks = num_models * 2
    blocks = [
        ParameterBlock(b, int(rng.integers(1, 50))) for b in range(num_blocks)
    ]
    models = [
        Model(
            i,
            tuple(
                sorted(
                    set(
                        int(x)
                        for x in rng.integers(
                            0, num_blocks, size=rng.integers(1, 5)
                        )
                    )
                )
            ),
        )
        for i in range(num_models)
    ]
    library = ModelLibrary(blocks, models)
    num_servers = int(rng.integers(1, 6))
    num_users = int(rng.integers(1, 120))
    demand = rng.random((num_users, num_models)) + 1e-6
    feasible = rng.random((num_servers, num_users, num_models)) < 0.5
    capacities = [int(rng.integers(0, 200)) for _ in range(num_servers)]
    return PlacementInstance(library, demand, feasible, capacities)


class TestTrackerBitEquality:
    def test_maintained_gains_bit_identical(self):
        """Column refreshes reproduce the full einsum bit for bit."""
        rng = np.random.default_rng(0)
        for _ in range(30):
            instance = random_tracker_instance(rng)
            new = CoverageTracker(instance)
            ref = ReferenceCoverageTracker(instance)
            assert (new.gain_matrix() == ref.gain_matrix()).all()
            for _ in range(25):
                server = int(rng.integers(0, instance.num_servers))
                model = int(rng.integers(0, instance.num_models))
                new.mark_served(server, model)
                ref.mark_served(server, model)
                assert (new.served == ref.served).all()
                assert (new.gain_matrix() == ref.gain_matrix()).all()
                assert (new.unserved_demand() == ref.unserved_demand()).all()
                assert new.gain(server, model) == ref.gain(server, model)
                assert (
                    new.server_gains(server) == ref.server_gains(server)
                ).all()

    def test_placed_pair_gain_is_exact_zero(self):
        """mark_served zeroes the pair's own gain exactly (the vectorised
        engine's argmax relies on this instead of a placed mask)."""
        rng = np.random.default_rng(1)
        for _ in range(20):
            instance = random_tracker_instance(rng)
            tracker = CoverageTracker(instance)
            for _ in range(10):
                server = int(rng.integers(0, instance.num_servers))
                model = int(rng.integers(0, instance.num_models))
                tracker.mark_served(server, model)
                assert tracker.gain(server, model) == 0.0


class TestGenEquivalence:
    @pytest.mark.parametrize("case,storage,seed", SCENARIO_GRID)
    def test_all_paths_match_seed_naive(self, case, storage, seed):
        """vectorised ≡ naive ≡ seed naive greedy, placement-for-placement."""
        instance = grid_instance(case, storage, seed)
        vectorised = TrimCachingGen(accelerated=True).solve(instance)
        naive = TrimCachingGen(accelerated=False).solve(instance)
        seed_naive = ReferenceGen(accelerated=False).solve(instance)
        assert vectorised.placement == naive.placement
        assert vectorised.placement == seed_naive.placement
        assert vectorised.hit_ratio == seed_naive.hit_ratio

    @pytest.mark.parametrize("case,storage,seed", SCENARIO_GRID)
    def test_matches_seed_lazy(self, case, storage, seed):
        """The seed's lazy greedy agrees on this grid too. (Its
        pairwise-sum gains can round mathematically tied pairs apart
        from its own naive scan's einsum on some larger instances — a
        seed-internal quirk — so the canonical reference is the naive
        scan; this grid is one where the seed agrees with itself.)"""
        instance = grid_instance(case, storage, seed)
        vectorised = TrimCachingGen(accelerated=True).solve(instance)
        seed_lazy = ReferenceGen(accelerated=True).solve(instance)
        assert vectorised.placement == seed_lazy.placement


class TestSpecEquivalence:
    @pytest.mark.parametrize(
        "storage,seed",
        [(s, seed) for s in (0.06, 0.12, 0.3) for seed in (0, 1, 2, 3)],
    )
    def test_matches_seed_spec(self, storage, seed):
        instance = grid_instance("special", storage, seed)
        new = TrimCachingSpec(epsilon=0.1).solve(instance)
        ref = ReferenceSpec(epsilon=0.1).solve(instance)
        assert new.placement == ref.placement
        assert new.stats["per_server_mass"] == ref.stats["per_server_mass"]


class TestIndependentEquivalence:
    @pytest.mark.parametrize("case,storage,seed", SCENARIO_GRID)
    def test_masked_argmax_matches_seed(self, case, storage, seed):
        """The masked-argmax Independent port is byte-identical to the
        seed's per-step rescan loop."""
        instance = grid_instance(case, storage, seed)
        new = IndependentCaching().solve(instance)
        ref = ReferenceIndependent().solve(instance)
        assert new.placement == ref.placement
        assert new.hit_ratio == ref.hit_ratio
        assert new.stats["greedy_steps"] == ref.stats["greedy_steps"]


class TestSparseEquivalence:
    """The CSR feasibility/coverage path pinned against the dense seed.

    The sparse engine's ``served``/``unserved_demand`` state is exactly
    the dense engine's; its gain sums reduce only the CSR nonzeros and so
    may differ from the einsum in final ulps — placements, hit ratios and
    the zero/positive gain structure must still match exactly.
    """

    def test_tracker_state_exact_and_gains_tight(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            instance = random_tracker_instance(rng)
            dense = CoverageTracker(instance, engine="dense")
            sparse = CoverageTracker(instance, engine="sparse")
            ref = ReferenceCoverageTracker(instance)
            for _ in range(15):
                server = int(rng.integers(0, instance.num_servers))
                model = int(rng.integers(0, instance.num_models))
                dense.mark_served(server, model)
                sparse.mark_served(server, model)
                ref.mark_served(server, model)
                assert (sparse.served == ref.served).all()
                assert (
                    sparse.unserved_demand() == ref.unserved_demand()
                ).all()
                gains_sparse = sparse.gain_matrix()
                gains_ref = ref.gain_matrix()
                # Same terms, possibly different reduction grouping.
                assert np.allclose(gains_sparse, gains_ref, rtol=1e-12, atol=0.0)
                # Zero structure is exact: a pair with no reachable mass
                # reads exactly 0.0 in both engines (the argmax stopping
                # rule depends on it).
                assert ((gains_sparse == 0.0) == (gains_ref == 0.0)).all()
                assert sparse.hit_ratio() == dense.hit_ratio()

    @pytest.mark.parametrize("case,storage,seed", SCENARIO_GRID)
    def test_sparse_gen_matches_seed(self, case, storage, seed):
        sparse_instance = grid_instance(case, storage, seed)
        assert sparse_instance.is_sparse_primary
        result = TrimCachingGen(engine="sparse").solve(sparse_instance)
        seed_result = ReferenceGen(accelerated=False).solve(
            grid_instance(case, storage, seed, feasibility="dense")
        )
        assert result.placement == seed_result.placement
        assert result.hit_ratio == seed_result.hit_ratio

    @pytest.mark.parametrize(
        "storage,seed",
        [(s, seed) for s in (0.06, 0.12, 0.3) for seed in (0, 1, 2, 3)],
    )
    def test_sparse_spec_matches_seed(self, storage, seed):
        sparse_instance = grid_instance("special", storage, seed)
        result = TrimCachingSpec(epsilon=0.1, engine="sparse").solve(
            sparse_instance
        )
        ref = ReferenceSpec(epsilon=0.1).solve(
            grid_instance("special", storage, seed, feasibility="dense")
        )
        assert result.placement == ref.placement
        assert result.hit_ratio == ref.hit_ratio

    @pytest.mark.parametrize("case,storage,seed", SCENARIO_GRID[:8])
    def test_sparse_independent_matches_seed(self, case, storage, seed):
        sparse_instance = grid_instance(case, storage, seed)
        result = IndependentCaching(engine="sparse").solve(sparse_instance)
        ref = ReferenceIndependent().solve(
            grid_instance(case, storage, seed, feasibility="dense")
        )
        assert result.placement == ref.placement
        assert result.hit_ratio == ref.hit_ratio


class TestParallelSpecEquivalence:
    """``workers=N`` Spec is byte-identical to the serial traversal."""

    @pytest.mark.parametrize(
        "storage,seed", [(s, seed) for s in (0.06, 0.12) for seed in (0, 1, 2)]
    )
    def test_workers_byte_identical(self, storage, seed):
        instance = grid_instance("special", storage, seed)
        serial = TrimCachingSpec(epsilon=0.1).solve(instance)
        parallel = TrimCachingSpec(epsilon=0.1, workers=3).solve(instance)
        assert parallel.placement == serial.placement
        assert parallel.hit_ratio == serial.hit_ratio
        assert (
            parallel.stats["per_server_mass"]
            == serial.stats["per_server_mass"]
        )

    def test_cache_disabled_identical(self):
        instance = grid_instance("special", 0.12, 0)
        cached = TrimCachingSpec(epsilon=0.1).solve(instance)
        uncached = TrimCachingSpec(
            epsilon=0.1, reuse_library_cache=False
        ).solve(instance)
        assert cached.placement == uncached.placement
        assert (
            cached.stats["per_server_mass"] == uncached.stats["per_server_mass"]
        )


class TestKnapsackEquivalence:
    def test_vectorised_value_dp_matches_reference(self):
        """Identical (value, selection) on 300 random knapsacks, and
        identical guard errors when the state table would blow up."""
        rng = np.random.default_rng(7)
        checked = raised = 0
        for _ in range(300):
            n = int(rng.integers(1, 25))
            values = (rng.random(n) * float(rng.integers(1, 100))).tolist()
            weights = rng.integers(0, 60, size=n).tolist()
            capacity = int(rng.integers(0, 300))
            epsilon = float(rng.choice([0.05, 0.1, 0.3]))
            try:
                expected = reference_knapsack_value_dp(
                    values, weights, capacity, epsilon
                )
            except SolverError:
                with pytest.raises(SolverError):
                    knapsack_value_dp(values, weights, capacity, epsilon)
                raised += 1
                continue
            assert knapsack_value_dp(values, weights, capacity, epsilon) == expected
            checked += 1
        assert checked >= 200
