"""Tests for the CSR feasibility artifact (:mod:`repro.core.sparse`).

Everything boolean/integer here must be *exactly* equal to the dense
path — the CSR is a representation change, not an approximation.
"""

import numpy as np
import pytest

from repro.core.placement import PlacementInstance
from repro.core.sparse import SparseFeasibility
from repro.errors import PlacementError
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario
from repro.utils.units import GB


def random_dense(rng, num_servers=None, num_users=None, num_models=None):
    num_servers = num_servers or int(rng.integers(1, 8))
    num_users = num_users or int(rng.integers(1, 40))
    num_models = num_models or int(rng.integers(1, 15))
    density = float(rng.uniform(0.0, 0.5))
    return rng.random((num_servers, num_users, num_models)) < density


class TestRoundTrip:
    def test_dense_round_trip_exact(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            dense = random_dense(rng)
            sparse = SparseFeasibility.from_dense(dense)
            assert sparse.shape == dense.shape
            assert sparse.nnz == int(dense.sum())
            assert (sparse.to_dense() == dense).all()

    def test_empty_and_full_tensors(self):
        for dense in (
            np.zeros((3, 4, 5), dtype=bool),
            np.ones((3, 4, 5), dtype=bool),
        ):
            sparse = SparseFeasibility.from_dense(dense)
            assert (sparse.to_dense() == dense).all()
            assert sparse.density == float(dense.mean())

    def test_pair_users_match_dense(self):
        rng = np.random.default_rng(1)
        dense = random_dense(rng, 5, 20, 8)
        sparse = SparseFeasibility.from_dense(dense)
        for server in range(5):
            for model_index in range(8):
                expected = np.flatnonzero(dense[server, :, model_index])
                assert (sparse.pair_users(server, model_index) == expected).all()

    def test_column_entries_cover_column(self):
        rng = np.random.default_rng(2)
        dense = random_dense(rng, 4, 25, 6)
        sparse = SparseFeasibility.from_dense(dense)
        for model_index in range(6):
            servers, users = sparse.column_entries(model_index)
            rebuilt = np.zeros((4, 25), dtype=bool)
            rebuilt[servers, users] = True
            assert (rebuilt == dense[:, :, model_index]).all()

    def test_user_view_matches_dense(self):
        rng = np.random.default_rng(3)
        dense = random_dense(rng, 5, 15, 7)
        sparse = SparseFeasibility.from_dense(dense)
        indptr, user_models, user_servers = sparse.user_view()
        assert indptr[-1] == sparse.nnz
        for user in range(15):
            start, stop = indptr[user], indptr[user + 1]
            rebuilt = np.zeros((5, 7), dtype=bool)
            rebuilt[user_servers[start:stop], user_models[start:stop]] = True
            assert (rebuilt == dense[:, user, :]).all()

    def test_server_coverage_counts(self):
        rng = np.random.default_rng(4)
        for _ in range(10):
            dense = random_dense(rng)
            sparse = SparseFeasibility.from_dense(dense)
            expected = dense.any(axis=2).sum(axis=1)
            assert (sparse.server_coverage_counts() == expected).all()

    def test_served_matrix_matches_einsum(self):
        rng = np.random.default_rng(5)
        for _ in range(15):
            dense = random_dense(rng)
            sparse = SparseFeasibility.from_dense(dense)
            placement = rng.random((dense.shape[0], dense.shape[2])) < 0.3
            expected = np.einsum("mki,mi->ki", dense, placement) > 0
            assert (sparse.served_matrix(placement) == expected).all()

    def test_served_matrix_rejects_bad_shape(self):
        sparse = SparseFeasibility.from_dense(np.ones((2, 3, 4), dtype=bool))
        with pytest.raises(PlacementError):
            sparse.served_matrix(np.ones((2, 5), dtype=bool))


class TestLatencyConstruction:
    """``feasibility_sparse`` must equal the dense tensor bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_matches_dense_feasibility(self, seed):
        config = ScenarioConfig(
            num_servers=8,
            num_users=50,
            num_models=20,
            requests_per_user=8,
            storage_bytes=int(0.1 * GB),
        )
        scenario = build_scenario(config, seed=seed, feasibility="dense")
        dense = scenario.latency_model.feasibility()
        sparse = scenario.latency_model.feasibility_sparse()
        assert (sparse.to_dense() == dense).all()

    def test_matches_under_faded_rates(self):
        scenario = build_scenario(
            ScenarioConfig(num_servers=4, num_users=12, num_models=8), seed=3
        )
        rng = np.random.default_rng(0)
        rates = scenario.topology.expected_rates * rng.rayleigh(
            scale=np.sqrt(2 / np.pi), size=scenario.topology.expected_rates.shape
        )
        dense = scenario.latency_model.feasibility(rates)
        sparse = scenario.latency_model.feasibility_sparse(rates)
        assert (sparse.to_dense() == dense).all()


class TestSparsePrimaryInstance:
    def test_lazy_dense_identical(self):
        scenario = build_scenario(
            ScenarioConfig(num_servers=4, num_users=20, num_models=10), seed=5
        )
        instance = scenario.instance
        assert instance.is_sparse_primary
        dense_scenario = build_scenario(
            scenario.config, seed=5, feasibility="dense"
        )
        assert not dense_scenario.instance.is_sparse_primary
        assert (instance.feasible == dense_scenario.instance.feasible).all()
        assert instance.feasible_shape == dense_scenario.instance.feasible_shape

    def test_dense_primary_lazy_sparse(self):
        rng = np.random.default_rng(6)
        scenario = build_scenario(
            ScenarioConfig(num_servers=3, num_users=10, num_models=6),
            seed=1,
            feasibility="dense",
        )
        instance = scenario.instance
        assert not instance.has_sparse
        sparse = instance.sparse_feasible
        assert instance.has_sparse
        assert (sparse.to_dense() == instance.feasible).all()
        assert instance.feasibility_density == sparse.density

    def test_shape_validation_with_sparse_input(self, tiny_library):
        sparse = SparseFeasibility.from_dense(np.ones((2, 2, 4), dtype=bool))
        with pytest.raises(PlacementError):
            PlacementInstance(
                tiny_library, np.full((2, 3), 0.1), sparse, [10, 10]
            )


def _coo_from_dense(dense):
    models, servers, users = np.nonzero(dense.transpose(2, 0, 1))
    return models, servers, users


class TestFromUserBlocks:
    @pytest.mark.parametrize("block_size", [1, 3, 7, 40, 64])
    def test_matches_from_coo(self, block_size):
        rng = np.random.default_rng(11)
        dense = random_dense(rng, 5, 40, 9)
        reference = SparseFeasibility.from_dense(dense)
        blocks = []
        for start in range(0, 40, block_size):
            stop = min(start + block_size, 40)
            models, servers, users = _coo_from_dense(dense[:, start:stop, :])
            blocks.append((models, servers, users + start))
        merged = SparseFeasibility.from_user_blocks(dense.shape, blocks)
        assert merged == reference

    def test_empty_blocks_allowed(self):
        dense = np.zeros((2, 6, 3), dtype=bool)
        dense[1, 4, 2] = True
        blocks = []
        for start in range(0, 6, 2):
            sub = dense[:, start : start + 2, :]
            models, servers, users = _coo_from_dense(sub)
            blocks.append((models, servers, users + start))
        merged = SparseFeasibility.from_user_blocks(dense.shape, blocks)
        assert merged == SparseFeasibility.from_dense(dense)

    def test_no_blocks_is_empty(self):
        merged = SparseFeasibility.from_user_blocks((2, 3, 4), [])
        assert merged.nnz == 0
        assert merged == SparseFeasibility.from_dense(
            np.zeros((2, 3, 4), dtype=bool)
        )


class TestEquality:
    def test_equal_and_unequal(self):
        rng = np.random.default_rng(12)
        dense = random_dense(rng, 3, 10, 5)
        a = SparseFeasibility.from_dense(dense)
        b = SparseFeasibility.from_dense(dense.copy())
        assert a == b and not (a != b)
        flipped = dense.copy()
        flipped[0, 0, 0] = not flipped[0, 0, 0]
        assert a != SparseFeasibility.from_dense(flipped)

    def test_shape_mismatch_unequal(self):
        a = SparseFeasibility.from_dense(np.zeros((2, 3, 4), dtype=bool))
        b = SparseFeasibility.from_dense(np.zeros((2, 4, 3), dtype=bool))
        assert a != b

    def test_other_types_not_implemented(self):
        sparse = SparseFeasibility.from_dense(np.zeros((1, 2, 3), dtype=bool))
        assert sparse != "not a bundle"
        assert (sparse == 42) is False

    def test_hash_is_identity(self):
        dense = np.zeros((1, 2, 3), dtype=bool)
        a = SparseFeasibility.from_dense(dense)
        b = SparseFeasibility.from_dense(dense)
        assert a == b
        assert hash(a) != hash(b) or a is b  # identity hashing retained
        assert len({id(a), id(b)}) == 2


class TestServedMatrixBlock:
    def test_blocks_tile_served_matrix(self):
        rng = np.random.default_rng(13)
        for _ in range(10):
            dense = random_dense(rng)
            sparse = SparseFeasibility.from_dense(dense)
            placement = rng.random((dense.shape[0], dense.shape[2])) < 0.3
            full = sparse.served_matrix(placement)
            for block_size in (1, 3, dense.shape[1]):
                for start in range(0, dense.shape[1], block_size):
                    stop = min(start + block_size, dense.shape[1])
                    block = sparse.served_matrix_block(placement, start, stop)
                    assert (block == full[start:stop]).all()

    def test_range_validation(self):
        sparse = SparseFeasibility.from_dense(np.ones((2, 5, 3), dtype=bool))
        placement = np.ones((2, 3), dtype=bool)
        with pytest.raises(PlacementError, match="out of range"):
            sparse.served_matrix_block(placement, -1, 2)
        with pytest.raises(PlacementError, match="out of range"):
            sparse.served_matrix_block(placement, 0, 6)
        with pytest.raises(PlacementError, match="out of range"):
            sparse.served_matrix_block(placement, 4, 2)

    def test_shape_validation(self):
        sparse = SparseFeasibility.from_dense(np.ones((2, 5, 3), dtype=bool))
        with pytest.raises(PlacementError):
            sparse.served_matrix_block(np.ones((2, 4), dtype=bool), 0, 5)
