"""Tests for TrimCaching Spec (Algorithms 1 + 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exhaustive import ExhaustiveSearch
from repro.core.gen import TrimCachingGen
from repro.core.objective import hit_ratio, placement_is_feasible
from repro.core.placement import PlacementInstance
from repro.core.spec import TrimCachingSpec
from repro.data.resnet import RESNET18
from repro.errors import ConfigurationError, SolverError
from repro.models.blocks import ParameterBlock
from repro.models.finetune import FineTuner, make_resnet_root
from repro.models.library import ModelLibrary
from repro.models.model import Model


# ----------------------------------------------------------------------
# Random special-case instances: prefix sharing from a few roots
# ----------------------------------------------------------------------
@st.composite
def special_instances(draw):
    """Random chain-structured libraries + random demand/feasibility."""
    num_roots = draw(st.integers(1, 2))
    num_models = draw(st.integers(2, 5))
    num_servers = draw(st.integers(1, 2))
    num_users = draw(st.integers(1, 3))

    # Blocks: per root, a chain of up to 3 shared levels + specifics.
    blocks = []
    models = []
    block_id = 0
    root_prefixes = []
    for _ in range(num_roots):
        depth = draw(st.integers(1, 3))
        prefix = []
        for _ in range(depth):
            blocks.append(ParameterBlock(block_id, draw(st.integers(1, 20))))
            prefix.append(block_id)
            block_id += 1
        root_prefixes.append(prefix)

    for model_id in range(num_models):
        root = draw(st.integers(0, num_roots - 1))
        level = draw(st.integers(1, len(root_prefixes[root])))
        shared = list(root_prefixes[root][:level])
        n_specific = draw(st.integers(1, 2))
        specific = []
        for _ in range(n_specific):
            blocks.append(ParameterBlock(block_id, draw(st.integers(1, 20))))
            specific.append(block_id)
            block_id += 1
        models.append(Model(model_id, tuple(shared + specific)))

    library = ModelLibrary(blocks, models)
    demand = np.array(
        [
            [draw(st.floats(0.01, 1.0)) for _ in range(num_models)]
            for _ in range(num_users)
        ]
    )
    feasible = np.array(
        [
            [
                [draw(st.booleans()) for _ in range(num_models)]
                for _ in range(num_users)
            ]
            for _ in range(num_servers)
        ],
        dtype=bool,
    )
    capacities = [draw(st.integers(0, 120)) for _ in range(num_servers)]
    return PlacementInstance(library, demand, feasible, capacities)


class TestConstruction:
    def test_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            TrimCachingSpec(epsilon=-0.1)
        with pytest.raises(ConfigurationError):
            TrimCachingSpec(epsilon=1.5)

    def test_backend_defaults(self):
        assert TrimCachingSpec(epsilon=0.1).backend == "value_dp"
        assert TrimCachingSpec(epsilon=0.0).backend == "exact"

    def test_value_dp_needs_positive_epsilon(self):
        with pytest.raises(ConfigurationError):
            TrimCachingSpec(epsilon=0.0, backend="value_dp")

    def test_unknown_backend_and_order(self):
        with pytest.raises(ConfigurationError):
            TrimCachingSpec(backend="magic")
        with pytest.raises(ConfigurationError):
            TrimCachingSpec(server_order="magic")


class TestFeasibilityAndBasics:
    @given(special_instances())
    @settings(max_examples=40, deadline=None)
    def test_always_feasible(self, instance):
        result = TrimCachingSpec(epsilon=0.1).solve(instance)
        assert placement_is_feasible(instance, result.placement)

    @given(special_instances())
    @settings(max_examples=40, deadline=None)
    def test_hit_ratio_consistent(self, instance):
        result = TrimCachingSpec(epsilon=0.1).solve(instance)
        assert result.hit_ratio == pytest.approx(
            hit_ratio(instance, result.placement)
        )

    def test_stats_recorded(self, tight_scenario):
        result = TrimCachingSpec(epsilon=0.1).solve(tight_scenario.instance)
        assert result.stats["num_combinations"] >= 1
        assert result.stats["epsilon"] == 0.1

    def test_per_server_masses_sum_to_hit_mass(self, tight_scenario):
        """Eq. (12): U(X̂) = Σ_m Û_m — the I2 bookkeeping is exact."""
        instance = tight_scenario.instance
        result = TrimCachingSpec(epsilon=0.1).solve(instance)
        total_mass = sum(result.stats["per_server_mass"])
        assert total_mass / instance.total_demand == pytest.approx(
            result.hit_ratio
        )


class TestOptimality:
    @given(special_instances())
    @settings(max_examples=30, deadline=None)
    def test_exact_spec_beats_half_optimal(self, instance):
        """Proposition 3 / Theorem 2 with ε=0: U >= U*/2."""
        spec = TrimCachingSpec(epsilon=0.0).solve(instance)
        optimal = ExhaustiveSearch().solve(instance)
        assert spec.hit_ratio >= optimal.hit_ratio / 2.0 - 1e-9
        assert spec.hit_ratio <= optimal.hit_ratio + 1e-9

    @given(special_instances())
    @settings(max_examples=30, deadline=None)
    def test_epsilon_guarantee(self, instance):
        """Theorem 2: U >= (1-ε)/2 U*."""
        epsilon = 0.2
        spec = TrimCachingSpec(epsilon=epsilon).solve(instance)
        optimal = ExhaustiveSearch().solve(instance)
        assert spec.hit_ratio >= (1 - epsilon) / 2 * optimal.hit_ratio - 1e-9

    def test_matches_optimum_on_tight_scenario(self, tight_scenario):
        """The paper's Fig. 6(a) observation: Spec(ε=0) hits the optimum
        (not guaranteed in general, but holds on typical instances)."""
        spec = TrimCachingSpec(epsilon=0.0).solve(tight_scenario.instance)
        optimal = ExhaustiveSearch().solve(tight_scenario.instance)
        assert spec.hit_ratio == pytest.approx(optimal.hit_ratio, abs=1e-9)

    def test_single_server_exact_spec_is_optimal(self):
        """With M=1 the successive greedy is exact, so Spec(ε=0) must
        equal the exhaustive optimum."""
        tuner = FineTuner()
        root = make_resnet_root(RESNET18)
        for index in range(4):
            tuner.freeze_bottom(root, 30 + index, name=f"m{index}")
        library = tuner.build()
        rng = np.random.default_rng(0)
        demand = rng.uniform(0.1, 1.0, size=(3, 4))
        feasible = rng.uniform(size=(1, 3, 4)) < 0.8
        capacity = int(library.model_size(0) * 1.6)
        instance = PlacementInstance(library, demand, feasible, [capacity])
        spec = TrimCachingSpec(epsilon=0.0).solve(instance)
        optimal = ExhaustiveSearch().solve(instance)
        assert spec.hit_ratio == pytest.approx(optimal.hit_ratio, abs=1e-12)


class TestBackendsAgree:
    @given(special_instances())
    @settings(max_examples=20, deadline=None)
    def test_weight_dp_matches_exact(self, instance):
        """Byte-exact weight DP (quantum=1 via small sizes) == exact BB."""
        exact = TrimCachingSpec(epsilon=0.0, backend="exact").solve(instance)
        # Sizes in these instances are tiny ints, so quantum=1 is exact.
        weight = TrimCachingSpec(epsilon=0.1, backend="weight_dp")
        # Patch the backend call to quantum=1 via a subclass-free shim:
        from repro.core import dp as dp_module

        original = dp_module.KNAPSACK_BACKENDS["weight_dp"]
        dp_module.KNAPSACK_BACKENDS["weight_dp"] = (
            lambda v, w, c: original(v, w, c, quantum=1)
        )
        try:
            result = weight.solve(instance)
        finally:
            dp_module.KNAPSACK_BACKENDS["weight_dp"] = original
        assert result.hit_ratio == pytest.approx(exact.hit_ratio, abs=1e-9)


class TestRunKnapsackFallbackChain:
    """The value_dp → weight_dp(quantum) → exact rescue chain, rung by
    rung, on a wide-value-spread instance that blows the rounded DP."""

    # A value spread of ~5 orders of magnitude: at ε = 0.1 the rounded
    # table needs ~1e7 states, so the value_dp rung always raises — and
    # the 1e-4 improvements stay far above the exact backends' 1e-12
    # pruning slack, so every exact rescue rung agrees on the selection.
    wide_values = [1e-4, 7.0, 5.0, 4.0, 3.0]
    wide_weights = [1, 4, 3, 3, 2]
    capacity = 8

    def _spec(self, **kwargs):
        return TrimCachingSpec(epsilon=0.1, **kwargs)

    def test_value_dp_rung_blows_on_this_instance(self):
        from repro.core.dp import knapsack_value_dp

        with pytest.raises(SolverError):
            knapsack_value_dp(
                self.wide_values, self.wide_weights, self.capacity, 0.1
            )

    def test_rung2_lands_on_quantised_weight_dp(self):
        from repro.core.dp import knapsack_weight_dp

        result = self._spec()._run_knapsack(
            self.wide_values, self.wide_weights, self.capacity
        )
        quantum = max(1, self.capacity // 800)
        assert result == knapsack_weight_dp(
            self.wide_values, self.wide_weights, self.capacity, quantum=quantum
        )

    def test_rung3_lands_on_exact_when_weight_dp_blows(self, monkeypatch):
        from repro.core import dp as dp_module

        def blown(*args, **kwargs):
            raise SolverError("weight DP table blown (test)")

        monkeypatch.setitem(dp_module.KNAPSACK_BACKENDS, "weight_dp", blown)
        result = self._spec()._run_knapsack(
            self.wide_values, self.wide_weights, self.capacity
        )
        assert result == dp_module.knapsack_branch_and_bound(
            self.wide_values, self.wide_weights, self.capacity
        )

    def test_all_rungs_select_identically_here(self, monkeypatch):
        """On this instance quantum=1 keeps the weight DP exact, so all
        three rescue rungs must return the identical selection."""
        from repro.core import dp as dp_module

        rung2 = self._spec()._run_knapsack(
            self.wide_values, self.wide_weights, self.capacity
        )
        best_first = self._spec(fallback="best_first")._run_knapsack(
            self.wide_values, self.wide_weights, self.capacity
        )

        def blown(*args, **kwargs):
            raise SolverError("weight DP table blown (test)")

        monkeypatch.setitem(dp_module.KNAPSACK_BACKENDS, "weight_dp", blown)
        rung3 = self._spec()._run_knapsack(
            self.wide_values, self.wide_weights, self.capacity
        )
        assert rung2[1] == rung3[1] == best_first[1]
        assert rung2[0] == rung3[0] == best_first[0]

    def test_best_first_fallback_used_when_configured(self):
        from repro.core.dp import knapsack_best_first

        result = self._spec(fallback="best_first")._run_knapsack(
            self.wide_values, self.wide_weights, self.capacity
        )
        assert result == knapsack_best_first(
            self.wide_values, self.wide_weights, self.capacity
        )

    def test_best_first_budget_overrun_drops_to_legacy_rungs(self, monkeypatch):
        from repro.core import dp as dp_module
        from repro.core.dp import knapsack_weight_dp

        def over_budget(*args, **kwargs):
            raise SolverError("best-first node budget exceeded (test)")

        monkeypatch.setitem(
            dp_module.KNAPSACK_BACKENDS, "best_first", over_budget
        )
        result = self._spec(fallback="best_first")._run_knapsack(
            self.wide_values, self.wide_weights, self.capacity
        )
        quantum = max(1, self.capacity // 800)
        assert result == knapsack_weight_dp(
            self.wide_values, self.wide_weights, self.capacity, quantum=quantum
        )

    def test_healthy_instance_never_falls_back(self):
        from repro.core.dp import knapsack_value_dp

        values = [3.0, 4.0, 5.0]
        weights = [2, 3, 4]
        assert self._spec()._run_knapsack(values, weights, 6) == (
            knapsack_value_dp(values, weights, 6, 0.1)
        )


class TestSpecKnobs:
    def test_fallback_validation(self):
        with pytest.raises(ConfigurationError):
            TrimCachingSpec(fallback="magic")
        assert TrimCachingSpec(fallback="best_first").fallback == "best_first"

    def test_knapsack_cache_off_matches_on(self, tight_scenario):
        on = TrimCachingSpec(epsilon=0.1, knapsack_cache=True).solve(
            tight_scenario.instance
        )
        off = TrimCachingSpec(epsilon=0.1, knapsack_cache=False).solve(
            tight_scenario.instance
        )
        assert np.array_equal(on.placement.matrix, off.placement.matrix)
        assert on.hit_ratio == off.hit_ratio
        assert "knapsack_cache_hits" in on.stats
        assert "knapsack_cache_hits" not in off.stats

    def test_prefix_prune_off_matches_on(self, tight_scenario):
        on = TrimCachingSpec(epsilon=0.1, prefix_prune=True).solve(
            tight_scenario.instance
        )
        off = TrimCachingSpec(epsilon=0.1, prefix_prune=False).solve(
            tight_scenario.instance
        )
        assert np.array_equal(on.placement.matrix, off.placement.matrix)
        assert on.hit_ratio == off.hit_ratio

    @given(special_instances())
    @settings(max_examples=20, deadline=None)
    def test_pruned_cached_solve_matches_plain(self, instance):
        """Both fast-path knobs off == both on, placement-identical, on
        random special-case instances."""
        fast = TrimCachingSpec(epsilon=0.1).solve(instance)
        plain = TrimCachingSpec(
            epsilon=0.1, knapsack_cache=False, prefix_prune=False
        ).solve(instance)
        assert np.array_equal(fast.placement.matrix, plain.placement.matrix)
        assert fast.hit_ratio == plain.hit_ratio

    def test_best_first_fallback_matches_default_on_scenario(
        self, tight_scenario
    ):
        default = TrimCachingSpec(epsilon=0.1).solve(tight_scenario.instance)
        best_first = TrimCachingSpec(epsilon=0.1, fallback="best_first").solve(
            tight_scenario.instance
        )
        # Both chains are exact-or-better on these small instances; the
        # placements may only differ if a fallback rung actually fired
        # and disagreed — they must not here.
        assert np.array_equal(
            default.placement.matrix, best_first.placement.matrix
        )


class TestSpecOnSpecialScenario:
    def test_beats_or_matches_gen(self, tight_scenario):
        """The paper's headline: Spec >= Gen on the special case (allow
        tiny numerical slack)."""
        spec = TrimCachingSpec(epsilon=0.1).solve(tight_scenario.instance)
        gen = TrimCachingGen().solve(tight_scenario.instance)
        assert spec.hit_ratio >= gen.hit_ratio - 0.02

    def test_server_orders_all_feasible(self, tight_scenario):
        for order in ("index", "capacity", "coverage"):
            result = TrimCachingSpec(epsilon=0.1, server_order=order).solve(
                tight_scenario.instance
            )
            assert placement_is_feasible(tight_scenario.instance, result.placement)


class TestGuards:
    def test_non_exclusive_specific_blocks_rejected(self):
        # Two models share a block, a third also contains it -> still
        # shared; but craft a library whose "specific" block appears in
        # two models via zero-owner tricks is impossible, so instead test
        # the library check directly on a healthy library.
        blocks = [ParameterBlock(0, 5), ParameterBlock(1, 5)]
        models = [Model(0, (0, 1)), Model(1, (0,))]
        library = ModelLibrary(blocks, models)
        assert library.specific_blocks_are_exclusive()

    def test_combination_explosion_guarded(self):
        tuner = FineTuner()
        root = make_resnet_root(RESNET18)
        tuner.freeze_bottom(root, 30, name="a")
        tuner.freeze_bottom(root, 30, name="b")
        library = tuner.build()
        demand = np.full((1, 2), 0.5)
        feasible = np.ones((1, 1, 2), dtype=bool)
        instance = PlacementInstance(library, demand, feasible, [10**9])
        solver = TrimCachingSpec(epsilon=0.1, max_combinations=1)
        with pytest.raises(SolverError):
            solver.solve(instance)
