"""Property tests for Propositions 1-2: submodularity of U and g_m."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import PlacementInstance
from repro.core.submodular import (
    is_monotone_sampled,
    is_submodular_exhaustive,
    is_submodular_sampled,
    objective_set_function,
    placement_ground_set,
    storage_set_function,
)
from repro.models.blocks import ParameterBlock
from repro.models.library import ModelLibrary
from repro.models.model import Model


# ----------------------------------------------------------------------
# Random small instances for hypothesis
# ----------------------------------------------------------------------
@st.composite
def small_instances(draw):
    """Random libraries with overlapping blocks + random demand/feasibility."""
    num_blocks = draw(st.integers(2, 6))
    num_models = draw(st.integers(2, 4))
    num_servers = draw(st.integers(1, 2))
    num_users = draw(st.integers(1, 3))
    blocks = [
        ParameterBlock(index, draw(st.integers(1, 20)))
        for index in range(num_blocks)
    ]
    models = []
    for model_id in range(num_models):
        member = draw(
            st.lists(
                st.integers(0, num_blocks - 1),
                min_size=1,
                max_size=num_blocks,
                unique=True,
            )
        )
        models.append(Model(model_id, tuple(member)))
    library = ModelLibrary(blocks, models)
    demand = np.array(
        [
            [draw(st.floats(0.0, 1.0)) for _ in range(num_models)]
            for _ in range(num_users)
        ]
    )
    if demand.sum() == 0:
        demand[0, 0] = 1.0
    feasible = np.array(
        [
            [
                [draw(st.booleans()) for _ in range(num_models)]
                for _ in range(num_users)
            ]
            for _ in range(num_servers)
        ],
        dtype=bool,
    )
    capacities = [draw(st.integers(0, 100)) for _ in range(num_servers)]
    return PlacementInstance(library, demand, feasible, capacities)


class TestObjectiveSubmodularity:
    """Proposition 1 (objective part)."""

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_sampled_submodular(self, instance):
        f = objective_set_function(instance)
        ground = placement_ground_set(instance)
        assert is_submodular_sampled(f, ground, trials=60, seed=0)

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_monotone(self, instance):
        f = objective_set_function(instance)
        ground = placement_ground_set(instance)
        assert is_monotone_sampled(f, ground, trials=60, seed=0)

    def test_exhaustive_on_tiny(self, tiny_instance):
        f = objective_set_function(tiny_instance)
        ground = placement_ground_set(tiny_instance)[:5]
        ok, violations = is_submodular_exhaustive(f, ground)
        assert ok, violations


class TestStorageSubmodularity:
    """Proposition 1 (constraint part): g_m is submodular over models."""

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_sampled_submodular(self, instance):
        g = storage_set_function(instance, server=0)
        ground = list(range(instance.num_models))
        assert is_submodular_sampled(g, ground, trials=60, seed=1)

    def test_exhaustive_on_tiny(self, tiny_instance):
        g = storage_set_function(tiny_instance, server=0)
        ok, violations = is_submodular_exhaustive(g, [0, 1, 2])
        assert ok, violations

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_monotone(self, instance):
        g = storage_set_function(instance, server=0)
        ground = list(range(instance.num_models))
        assert is_monotone_sampled(g, ground, trials=60, seed=2)


class TestCheckersDetectViolations:
    """The checkers must be able to refute, not just confirm."""

    def test_exhaustive_refutes_supermodular(self):
        # f(S) = |S|^2 is strictly supermodular.
        f = lambda s: float(len(s) ** 2)
        ok, violations = is_submodular_exhaustive(f, [1, 2, 3])
        assert not ok
        assert violations

    def test_sampled_refutes_supermodular(self):
        f = lambda s: float(len(s) ** 2)
        assert not is_submodular_sampled(f, list(range(6)), trials=300, seed=0)

    def test_monotone_refutes_decreasing(self):
        f = lambda s: -float(len(s))
        assert not is_monotone_sampled(f, list(range(4)), trials=100, seed=0)

    def test_modular_passes_both(self):
        f = lambda s: float(sum(s))
        ok, _ = is_submodular_exhaustive(f, [1, 2, 3])
        assert ok


class TestP12Supermodularity:
    """The block-level reformulation P1.2's objective is supermodular in Y
    (the paper's Proposition-2 mapping): caching more blocks can only
    *increase* the marginal value of another block."""

    def test_block_level_supermodular_example(self, tiny_library):
        # U as a function of cached-block sets on a single server: a model
        # is available only when ALL its blocks are cached, so the value
        # function has increasing marginals (supermodular).
        demand = np.array([[1.0, 0.0, 0.0]])
        feasible = np.ones((1, 1, 3), dtype=bool)
        instance = PlacementInstance(tiny_library, demand, feasible, [10**9])

        def value_of_blocks(block_set):
            # Model 0 needs blocks {0, 1}.
            return 1.0 if {0, 1} <= set(block_set) else 0.0

        # Adding block 1 to S={} gains 0; adding it to T={0} gains 1:
        # increasing marginals, i.e. supermodular (and NOT submodular).
        ok, _ = is_submodular_exhaustive(value_of_blocks, [0, 1])
        assert not ok
