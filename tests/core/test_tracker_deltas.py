"""Delta operations on :class:`CoverageTracker` (the serving layer's core).

The pinned property: any interleaving of add/remove-user deltas (with
placement marks mixed in) leaves the gain matrix, the served mask, and
the unserved-demand state **bit-identical** to a tracker built fresh on
the final demand matrix with the same marks replayed — for both the
dense and the sparse engine. The serving layer's exactness guarantee
rests on this.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import CoverageTracker
from repro.core.placement import PlacementInstance
from repro.errors import PlacementError
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario
from repro.utils.units import GB

ENGINES = ("dense", "sparse")


@pytest.fixture(scope="module")
def delta_scenario():
    """Small but non-trivial: tight storage so marks interact with gains."""
    config = ScenarioConfig(
        num_servers=4,
        num_users=16,
        num_models=12,
        requests_per_user=5,
        storage_bytes=int(0.05 * GB),
    )
    return build_scenario(config, seed=29)


def private_instance(scenario) -> PlacementInstance:
    """A mutation-safe copy, built the way the serving layer builds one."""
    source = scenario.instance
    return PlacementInstance(
        library=scenario.library,
        demand=scenario.demand.copy(),
        feasible=source.sparse_feasible,
        capacities=np.asarray(source.capacities, dtype=np.int64).copy(),
    )


def assert_trackers_identical(actual: CoverageTracker, expected: CoverageTracker):
    """Bitwise equality of all tracker state (no tolerance)."""
    assert np.array_equal(actual.served, expected.served)
    assert np.array_equal(actual.unserved_demand(), expected.unserved_demand())
    actual_gains = actual.gain_matrix()
    expected_gains = expected.gain_matrix()
    assert (actual_gains == expected_gains).all(), (
        f"gain matrices differ in {np.sum(actual_gains != expected_gains)} "
        "entries"
    )


# Operations are drawn as (opcode, a, b) and interpreted against the
# scenario shape: 0 → remove user a%K, 1 → add user a%K back,
# 2 → mark (server a%M, model b%I).
_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=0,
    max_size=40,
)


class TestInterleavedDeltasMatchFreshBuild:
    @pytest.mark.parametrize("engine", ENGINES)
    @given(ops=_ops)
    @settings(max_examples=40, deadline=None)
    def test_any_interleaving_is_bit_identical(
        self, delta_scenario, engine, ops
    ):
        scenario = delta_scenario
        original = scenario.demand
        instance = private_instance(scenario)
        tracker = CoverageTracker(instance, engine=engine)
        num_users = instance.num_users
        num_servers = instance.num_servers
        num_models = instance.num_models

        active = np.ones(num_users, dtype=bool)
        marks = []
        for opcode, a, b in ops:
            if opcode == 0:
                user = a % num_users
                if active[user] and active.sum() == 1:
                    continue  # total demand must stay positive
                tracker.remove_user(user)
                active[user] = False
            elif opcode == 1:
                user = a % num_users
                tracker.add_user(user, original[user].copy())
                active[user] = True
            else:
                pair = (a % num_servers, b % num_models)
                tracker.mark_served(*pair)
                marks.append(pair)

        # Fresh build on the final demand, same marks replayed in order.
        fresh_instance = PlacementInstance(
            library=scenario.library,
            demand=instance.demand.copy(),
            feasible=scenario.instance.sparse_feasible,
            capacities=np.asarray(
                scenario.instance.capacities, dtype=np.int64
            ).copy(),
        )
        fresh = CoverageTracker(fresh_instance, engine=engine)
        for pair in marks:
            fresh.mark_served(*pair)
        assert_trackers_identical(tracker, fresh)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_remove_then_add_restores_exactly(self, delta_scenario, engine):
        scenario = delta_scenario
        instance = private_instance(scenario)
        tracker = CoverageTracker(instance, engine=engine)
        reference = CoverageTracker(private_instance(scenario), engine=engine)
        for user in (0, 3, 7):
            tracker.remove_user(user)
        for user in (7, 0, 3):
            tracker.add_user(user, scenario.demand[user].copy())
        assert_trackers_identical(tracker, reference)


class TestBulkMark:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_sequential_marks(self, delta_scenario, engine, seed):
        scenario = delta_scenario
        rng = np.random.default_rng(seed)
        num_pairs = int(rng.integers(1, 12))
        pairs = [
            (
                int(rng.integers(scenario.instance.num_servers)),
                int(rng.integers(scenario.instance.num_models)),
            )
            for _ in range(num_pairs)
        ]
        bulk = CoverageTracker(private_instance(scenario), engine=engine)
        touched = bulk.bulk_mark(pairs)
        sequential = CoverageTracker(private_instance(scenario), engine=engine)
        for pair in pairs:
            sequential.mark_served(*pair)
        assert_trackers_identical(bulk, sequential)
        assert np.array_equal(touched, np.unique(touched))

    def test_empty_pairs_is_noop(self, delta_scenario):
        tracker = CoverageTracker(private_instance(delta_scenario))
        reference = CoverageTracker(private_instance(delta_scenario))
        assert tracker.bulk_mark([]).size == 0
        assert_trackers_identical(tracker, reference)


class TestAdoptColumns:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_composes_two_exact_halves(self, delta_scenario, engine):
        scenario = delta_scenario
        base = CoverageTracker(private_instance(scenario), engine=engine)
        donor = base.clone()
        donor.scale_model(2, 1.7)
        donor.mark_served(1, 2)
        donor.mark_served(0, 5)
        composed = base.clone()
        composed.adopt_columns(donor, np.array([2, 5], dtype=np.intp))
        assert np.array_equal(
            composed.gain_matrix()[:, [2, 5]], donor.gain_matrix()[:, [2, 5]]
        )
        assert np.array_equal(
            composed.gain_matrix()[:, [0, 1, 3]],
            base.gain_matrix()[:, [0, 1, 3]],
        )
        assert np.array_equal(composed.served[:, 2], donor.served[:, 2])


class TestDeltaBookkeeping:
    def test_clone_is_independent(self, delta_scenario):
        tracker = CoverageTracker(private_instance(delta_scenario))
        clone = tracker.clone()
        clone.mark_served(0, 1)
        assert not tracker.served.any()
        assert tracker.instance is clone.instance

    def test_update_user_returns_changed_columns_only(self, delta_scenario):
        instance = private_instance(delta_scenario)
        tracker = CoverageTracker(instance)
        row = instance.demand[4].copy()
        nonzero = np.flatnonzero(row)
        assert nonzero.size  # scenario gives every user some demand
        changed = tracker.remove_user(4)
        assert np.array_equal(changed, nonzero)
        assert tracker.update_user(4, np.zeros_like(row)).size == 0

    def test_scale_model_factor_one_is_noop(self, delta_scenario):
        tracker = CoverageTracker(private_instance(delta_scenario))
        assert tracker.scale_model(3, 1.0).size == 0

    def test_scale_model_rejects_bad_factor(self, delta_scenario):
        tracker = CoverageTracker(private_instance(delta_scenario))
        with pytest.raises(PlacementError):
            tracker.scale_model(0, -0.5)

    def test_refresh_matches_fresh_build_after_mutation(self, delta_scenario):
        """refresh_columns == rebuilding on mutated demand (both engines)."""
        for engine in ENGINES:
            instance = private_instance(delta_scenario)
            tracker = CoverageTracker(instance, engine=engine)
            tracker.mark_served(2, 4)
            changed = instance.scale_demand_column(4, 0.25)
            tracker.refresh_columns(changed)
            fresh_instance = PlacementInstance(
                library=delta_scenario.library,
                demand=instance.demand.copy(),
                feasible=delta_scenario.instance.sparse_feasible,
                capacities=np.asarray(
                    delta_scenario.instance.capacities, dtype=np.int64
                ).copy(),
            )
            fresh = CoverageTracker(fresh_instance, engine=engine)
            fresh.mark_served(2, 4)
            assert_trackers_identical(tracker, fresh)
