"""Tests for the CIFAR-100 taxonomy data."""

import pytest

from repro.data.cifar100 import (
    CIFAR100_TAXONOMY,
    TABLE1_FINETUNE_GROUPS,
    all_classes,
    classes_of,
    superclass_of,
    superclasses,
)


class TestTaxonomy:
    def test_twenty_superclasses(self):
        assert len(superclasses()) == 20

    def test_five_classes_each(self):
        for superclass in superclasses():
            assert len(classes_of(superclass)) == 5

    def test_hundred_unique_classes(self):
        classes = all_classes()
        assert len(classes) == 100
        assert len(set(classes)) == 100

    def test_paper_example_fish(self):
        # The paper quotes the "fish" superclass membership verbatim.
        assert classes_of("fish") == [
            "aquarium fish",
            "flatfish",
            "ray",
            "shark",
            "trout",
        ]

    def test_superclass_of_roundtrip(self):
        for superclass in superclasses():
            for cls in classes_of(superclass):
                assert superclass_of(cls) == superclass

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            classes_of("mammoths")
        with pytest.raises(KeyError):
            superclass_of("unicorn")


class TestTable1Groups:
    def test_matches_paper_table(self):
        assert TABLE1_FINETUNE_GROUPS["fruit and vegetables"] == ("flowers", "trees")
        assert TABLE1_FINETUNE_GROUPS["vehicles 2"] == (
            "large man-made outdoor things",
            "vehicles 1",
        )
        assert len(TABLE1_FINETUNE_GROUPS["medium-sized mammals"]) == 5

    def test_all_groups_are_real_superclasses(self):
        for first, seconds in TABLE1_FINETUNE_GROUPS.items():
            assert first in CIFAR100_TAXONOMY
            for second in seconds:
                assert second in CIFAR100_TAXONOMY
