"""Tests for the ResNet layer tables.

The paper's frozen-layer ranges pin down the exact weight-tensor counts:
41 for ResNet-18, 73 for ResNet-34, 107 for ResNet-50. Parameter totals
must match the well-known architecture sizes.
"""

import pytest

from repro.data.resnet import (
    RESNET18,
    RESNET34,
    RESNET50,
    LayerSpec,
    resnet_layer_table,
    total_params,
)


class TestTensorCounts:
    """Counts implied by the paper's frozen ranges (§VII-A)."""

    def test_resnet18_has_41_tensors(self):
        assert len(resnet_layer_table(RESNET18)) == 41

    def test_resnet34_has_73_tensors(self):
        assert len(resnet_layer_table(RESNET34)) == 73

    def test_resnet50_has_107_tensors(self):
        assert len(resnet_layer_table(RESNET50)) == 107

    def test_paper_frozen_ranges_fit(self):
        # The paper freezes up to 40/72/106 layers: always leaves the head.
        for spec, high in ((RESNET18, 40), (RESNET34, 72), (RESNET50, 106)):
            assert high < len(resnet_layer_table(spec))


class TestParameterCounts:
    def test_resnet18_total(self):
        # Torchvision ResNet-18 backbone is ~11.18M params + CIFAR head.
        total = total_params(RESNET18, num_classes=100)
        assert total == pytest.approx(11.23e6, rel=0.02)

    def test_resnet50_total(self):
        # ResNet-50 backbone is ~23.5M params + CIFAR head.
        total = total_params(RESNET50, num_classes=100)
        assert total == pytest.approx(23.7e6, rel=0.02)

    def test_resnet34_between_18_and_50(self):
        assert (
            total_params(RESNET18)
            < total_params(RESNET34)
            < total_params(RESNET50)
        )

    def test_first_layer_is_conv1(self):
        table = resnet_layer_table(RESNET18)
        assert table[0].name == "conv1"
        assert table[0].params == 7 * 7 * 3 * 64

    def test_head_scales_with_classes(self):
        small = resnet_layer_table(RESNET18, num_classes=2)[-1]
        large = resnet_layer_table(RESNET18, num_classes=100)[-1]
        assert small.name == "fc" and large.name == "fc"
        assert small.params == 512 * 2 + 2
        assert large.params == 512 * 100 + 100

    def test_invalid_classes_rejected(self):
        with pytest.raises(ValueError):
            resnet_layer_table(RESNET18, num_classes=0)


class TestLayerSpec:
    def test_size_bytes_fp32(self):
        layer = LayerSpec("x", 100)
        assert layer.size_bytes() == 400
        assert layer.size_bytes(bytes_per_param=2) == 200

    def test_invalid_bytes_per_param(self):
        with pytest.raises(ValueError):
            LayerSpec("x", 100).size_bytes(0)

    def test_bn_layers_are_small(self):
        table = resnet_layer_table(RESNET18)
        bn_params = [layer.params for layer in table if ".bn" in layer.name or layer.name == "bn1"]
        conv_params = [layer.params for layer in table if "conv" in layer.name]
        assert max(bn_params) < min(p for p in conv_params if p > 0)
