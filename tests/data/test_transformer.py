"""Tests for the synthetic transformer layer table."""

import pytest

from repro.data.transformer import (
    NANO_LLM,
    TINY_LLM,
    TransformerSpec,
    lora_adapter_params,
    transformer_layer_table,
)


class TestLayerTable:
    def test_layer_count(self):
        table = transformer_layer_table(TINY_LLM)
        # embed + 4 per block + unembed
        assert len(table) == 2 + 4 * TINY_LLM.num_layers

    def test_total_params_tiny(self):
        total = sum(layer.params for layer in transformer_layer_table(TINY_LLM))
        # GPT-2-small-ish: ~130M with untied embeddings.
        assert 100e6 < total < 180e6

    def test_nano_is_a_billion_class_model(self):
        total = sum(layer.params for layer in transformer_layer_table(NANO_LLM))
        assert 1.0e9 < total < 2.0e9

    def test_embed_first_unembed_last(self):
        table = transformer_layer_table(TINY_LLM)
        assert table[0].name == "embed"
        assert table[-1].name == "unembed"

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            TransformerSpec("bad", num_layers=0, hidden_dim=8, ffn_dim=8, vocab_size=8)


class TestLoraAdapter:
    def test_adapter_is_tiny_fraction(self):
        backbone = sum(layer.params for layer in transformer_layer_table(NANO_LLM))
        adapter = lora_adapter_params(NANO_LLM, rank=8)
        # The paper cites >99% frozen parameters for LoRA.
        assert adapter / backbone < 0.01

    def test_adapter_scales_linearly_with_rank(self):
        r8 = lora_adapter_params(TINY_LLM, rank=8)
        r16 = lora_adapter_params(TINY_LLM, rank=16)
        assert r16 == 2 * r8

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            lora_adapter_params(TINY_LLM, rank=0)
