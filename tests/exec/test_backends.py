"""Tests for the execution backends: ordering, laziness, equivalence,
and the fault layer (typed errors, retries, in-process degradation)."""

import os

import pytest

from repro.errors import ConfigurationError
from repro.exec.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    LocalClusterBackend,
    ProcessBackend,
    SerialBackend,
    make_backend,
)
from repro.exec.faults import ChaosPolicy, TaskError, WorkerLost
from repro.exec.retry import RetryPolicy

#: A fast retry policy for tests: no backoff waits, still retries.
FAST_RETRY = RetryPolicy(
    max_attempts=3, backoff_base_s=0.0, backoff_max_s=0.0, jitter=0.0
)
FAST_DEGRADE = RetryPolicy(
    max_attempts=1,
    backoff_base_s=0.0,
    backoff_max_s=0.0,
    jitter=0.0,
    degrade_in_process=True,
)


def _square(value):
    return value * value


def _raise_on_three(value):
    if value == 3:
        raise ValueError(f"boom at {value}")
    return value * value


def _die_once_then_square(payload):
    """Kill the worker process the first time any task runs.

    The marker file is created with exclusive-create semantics, so
    exactly one execution dies however the pool races; every later
    execution (retry or degradation) computes normally.
    """
    marker, value = payload
    try:
        with open(marker, "x"):
            pass
    except FileExistsError:
        return value * value
    os._exit(1)


def _die_outside_parent(payload):
    """Kill any worker process; only the parent can run this task."""
    parent_pid, value = payload
    if os.getpid() != parent_pid:
        os._exit(1)
    return value * value


def _die_in_worker_raise_in_parent(payload):
    """Kill workers outright; raise when finally run in the parent."""
    parent_pid, value = payload
    if os.getpid() != parent_pid:
        os._exit(1)
    raise ValueError(f"parent boom at {value}")


class TestSerialBackend:
    def test_maps_in_order(self):
        assert list(SerialBackend().map(_square, [1, 2, 3])) == [1, 4, 9]

    def test_is_lazy(self):
        calls = []

        def record(value):
            calls.append(value)
            return value

        iterator = SerialBackend().map(record, [1, 2, 3])
        assert calls == []
        assert next(iterator) == 1
        assert calls == [1]  # later payloads untouched until consumed

    def test_empty(self):
        assert list(SerialBackend().map(_square, [])) == []


class TestProcessBackend:
    def test_maps_in_order(self):
        backend = ProcessBackend(workers=2)
        assert list(backend.map(_square, list(range(7)))) == [
            v * v for v in range(7)
        ]

    def test_chunksize(self):
        backend = ProcessBackend(workers=2, chunksize=3)
        assert list(backend.map(_square, list(range(8)))) == [
            v * v for v in range(8)
        ]

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ProcessBackend(workers=0)
        with pytest.raises(ConfigurationError):
            ProcessBackend(workers=2, chunksize=0)

    def test_task_exception_is_a_typed_task_error(self):
        # A task-function exception must fail fast as TaskError naming
        # the exact grid index — never retried, never a raw pool error.
        backend = ProcessBackend(workers=2, retry=FAST_RETRY)
        with pytest.raises(TaskError, match="boom at 3") as info:
            list(backend.map(_raise_on_three, list(range(6))))
        assert info.value.task_index == 3
        assert backend.stats.retries == 0

    def test_task_error_names_index_inside_chunks(self):
        backend = ProcessBackend(workers=1, chunksize=3)
        with pytest.raises(TaskError) as info:
            list(backend.map(_raise_on_three, list(range(6))))
        assert info.value.task_index == 3

    def test_worker_death_without_retry_is_typed(self, tmp_path):
        backend = ProcessBackend(workers=1)
        payloads = [(str(tmp_path / "marker"), v) for v in range(3)]
        with pytest.raises(WorkerLost) as info:
            list(backend.map(_die_once_then_square, payloads))
        assert info.value.task_index is not None
        assert backend.stats.workers_lost >= 1

    def test_worker_death_is_retried_to_the_right_answer(self, tmp_path):
        backend = ProcessBackend(workers=1, retry=FAST_RETRY)
        payloads = [(str(tmp_path / "marker"), v) for v in range(4)]
        assert list(backend.map(_die_once_then_square, payloads)) == [
            v * v for v in range(4)
        ]
        assert backend.stats.workers_lost >= 1
        assert backend.stats.retries >= 1

    def test_degrades_in_process_when_retries_exhausted(self):
        # Every worker execution dies; the degradation rung finishes the
        # grid in the parent instead of failing the sweep.
        backend = ProcessBackend(workers=1, retry=FAST_DEGRADE)
        payloads = [(os.getpid(), v) for v in range(3)]
        assert list(backend.map(_die_outside_parent, payloads)) == [
            v * v for v in range(3)
        ]
        assert backend.stats.degraded == 3

    def test_degraded_task_exception_is_still_a_task_error(self):
        # Workers die, degradation kicks in, and the task then raises in
        # the parent: still a typed TaskError, never a raw TaskFailure.
        backend = ProcessBackend(workers=1, retry=FAST_DEGRADE)
        payloads = [(os.getpid(), v) for v in range(2)]
        with pytest.raises(TaskError, match="degradation") as info:
            list(backend.map(_die_in_worker_raise_in_parent, payloads))
        assert info.value.task_index == 0


class TestLocalClusterBackend:
    def test_reinterleaves_shard_outputs(self):
        # Round-robin sharding must come back in submission order.
        backend = LocalClusterBackend(shards=3)
        assert list(backend.map(_square, list(range(10)))) == [
            v * v for v in range(10)
        ]

    def test_more_shards_than_payloads(self):
        backend = LocalClusterBackend(shards=8)
        assert list(backend.map(_square, [5, 6])) == [25, 36]

    def test_empty(self):
        assert list(LocalClusterBackend(shards=2).map(_square, [])) == []

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            LocalClusterBackend(shards=0)
        with pytest.raises(ConfigurationError):
            LocalClusterBackend(shards=2, workers=0)

    def test_task_exception_is_a_typed_task_error(self):
        backend = LocalClusterBackend(shards=2, workers=1)
        with pytest.raises(TaskError, match="boom at 3") as info:
            list(backend.map(_raise_on_three, list(range(6))))
        assert info.value.task_index == 3

    def test_shard_death_without_retry_is_typed(self, tmp_path):
        backend = LocalClusterBackend(shards=1, workers=1)
        payloads = [(str(tmp_path / "marker"), v) for v in range(3)]
        with pytest.raises(WorkerLost, match="shard job") as info:
            list(backend.map(_die_once_then_square, payloads))
        assert info.value.task_index is not None
        assert backend.stats.workers_lost >= 1

    def test_shard_death_is_retried_to_the_right_answer(self, tmp_path):
        backend = LocalClusterBackend(shards=2, workers=1, retry=FAST_RETRY)
        payloads = [(str(tmp_path / "marker"), v) for v in range(4)]
        assert list(backend.map(_die_once_then_square, payloads)) == [
            v * v for v in range(4)
        ]
        assert backend.stats.retries >= 1

    def test_degrades_in_process_when_retries_exhausted(self):
        backend = LocalClusterBackend(
            shards=2, workers=1, retry=FAST_DEGRADE
        )
        payloads = [(os.getpid(), v) for v in range(4)]
        assert list(backend.map(_die_outside_parent, payloads)) == [
            v * v for v in range(4)
        ]
        assert backend.stats.degraded == 4


class TestMakeBackend:
    def test_names(self):
        assert BACKEND_NAMES == ("serial", "process", "cluster", "remote")
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("process", workers=3), ProcessBackend)
        assert isinstance(make_backend("cluster", workers=3), LocalClusterBackend)

    def test_remote_name(self):
        from repro.exec.remote import RemoteClusterBackend

        backend = make_backend("remote", workers=3)
        assert isinstance(backend, RemoteClusterBackend)
        assert backend.workers == 3

    def test_workers_knob(self):
        assert make_backend("process", workers=3).workers == 3
        assert make_backend("cluster", workers=3).shards == 3

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            make_backend("slurm")

    def test_retry_threads_through(self):
        assert make_backend("process", retry=FAST_RETRY).retry is FAST_RETRY
        assert make_backend("cluster", retry=FAST_RETRY).retry is FAST_RETRY
        assert make_backend("remote", retry=FAST_RETRY).retry is FAST_RETRY

    def test_serial_rejects_retry(self):
        with pytest.raises(ConfigurationError, match="no failure domain"):
            make_backend("serial", retry=FAST_RETRY)

    def test_remote_only_flags_rejected_elsewhere(self):
        with pytest.raises(ConfigurationError, match="--heartbeat"):
            make_backend("process", heartbeat_interval=0.1)
        with pytest.raises(ConfigurationError, match="--task-timeout"):
            make_backend("cluster", task_timeout=1.0)
        with pytest.raises(ConfigurationError, match="--chaos"):
            make_backend("serial", chaos=ChaosPolicy(kill_after=1))

    def test_remote_flags_accepted(self):
        backend = make_backend(
            "remote",
            workers=2,
            heartbeat_interval=0.1,
            task_timeout=5.0,
            chaos=ChaosPolicy(kill_after=1),
        )
        assert backend.heartbeat_interval == 0.1
        assert backend.task_timeout == 5.0
        assert backend.chaos.kill_after == 1

    def test_protocol_conformance(self):
        for name in BACKEND_NAMES:
            assert isinstance(make_backend(name), ExecutionBackend)
