"""Tests for the execution backends: ordering, laziness, equivalence."""

import pytest

from repro.errors import ConfigurationError
from repro.exec.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    LocalClusterBackend,
    ProcessBackend,
    SerialBackend,
    make_backend,
)


def _square(value):
    return value * value


class TestSerialBackend:
    def test_maps_in_order(self):
        assert list(SerialBackend().map(_square, [1, 2, 3])) == [1, 4, 9]

    def test_is_lazy(self):
        calls = []

        def record(value):
            calls.append(value)
            return value

        iterator = SerialBackend().map(record, [1, 2, 3])
        assert calls == []
        assert next(iterator) == 1
        assert calls == [1]  # later payloads untouched until consumed

    def test_empty(self):
        assert list(SerialBackend().map(_square, [])) == []


class TestProcessBackend:
    def test_maps_in_order(self):
        backend = ProcessBackend(workers=2)
        assert list(backend.map(_square, list(range(7)))) == [
            v * v for v in range(7)
        ]

    def test_chunksize(self):
        backend = ProcessBackend(workers=2, chunksize=3)
        assert list(backend.map(_square, list(range(8)))) == [
            v * v for v in range(8)
        ]

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ProcessBackend(workers=0)
        with pytest.raises(ConfigurationError):
            ProcessBackend(workers=2, chunksize=0)


class TestLocalClusterBackend:
    def test_reinterleaves_shard_outputs(self):
        # Round-robin sharding must come back in submission order.
        backend = LocalClusterBackend(shards=3)
        assert list(backend.map(_square, list(range(10)))) == [
            v * v for v in range(10)
        ]

    def test_more_shards_than_payloads(self):
        backend = LocalClusterBackend(shards=8)
        assert list(backend.map(_square, [5, 6])) == [25, 36]

    def test_empty(self):
        assert list(LocalClusterBackend(shards=2).map(_square, [])) == []

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            LocalClusterBackend(shards=0)
        with pytest.raises(ConfigurationError):
            LocalClusterBackend(shards=2, workers=0)


class TestMakeBackend:
    def test_names(self):
        assert BACKEND_NAMES == ("serial", "process", "cluster")
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("process", workers=3), ProcessBackend)
        assert isinstance(make_backend("cluster", workers=3), LocalClusterBackend)

    def test_workers_knob(self):
        assert make_backend("process", workers=3).workers == 3
        assert make_backend("cluster", workers=3).shards == 3

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            make_backend("slurm")

    def test_protocol_conformance(self):
        for name in BACKEND_NAMES:
            assert isinstance(make_backend(name), ExecutionBackend)
