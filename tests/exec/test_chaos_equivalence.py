"""The chaos equivalence suite: crashes must not change a single bit.

Runs a real sweep plan on the remote backend under seeded fault
schedules — worker kills, dropped connections, retry exhaustion into
degradation — and asserts the deterministic content of the result
(canonical JSON minus measured wall-clock runtimes) is **identical**,
``==`` not approximately, to the serial reference. Also pins that a
chaos run over a shared artifact store leaves resumable, uncorrupted
partials.
"""

import pytest

from repro.api import ExperimentPlan, SolverSpec, SweepSpec
from repro.exec import (
    ArtifactStore,
    ChaosPolicy,
    RemoteClusterBackend,
    SerialBackend,
    execute_plan,
    plan_cache_key,
)
from repro.exec.retry import RetryPolicy
from repro.sim.serialization import result_set_content_json

FAST_RETRY = RetryPolicy(
    max_attempts=3,
    backoff_base_s=0.0,
    backoff_max_s=0.0,
    jitter=0.0,
    degrade_in_process=True,
)


def make_plan(**overrides):
    kwargs = dict(
        name="chaos equivalence",
        sweep=SweepSpec("capacity", (0.1, 0.2)),
        solvers=(SolverSpec("gen"), SolverSpec("independent")),
        base={"num_servers": 3, "num_users": 8, "num_models": 9},
        num_topologies=3,
        seed=0,
    )
    kwargs.update(overrides)
    return ExperimentPlan(**kwargs)


def remote(chaos=None, **kwargs):
    defaults = dict(
        workers=2, retry=FAST_RETRY, heartbeat_interval=0.05, chaos=chaos
    )
    defaults.update(kwargs)
    return RemoteClusterBackend(**defaults)


@pytest.fixture(scope="module")
def serial_reference():
    result, _ = execute_plan(make_plan(), backend=SerialBackend())
    return result_set_content_json(result)


def assert_content_identical(result, serial_reference):
    assert result_set_content_json(result) == serial_reference


class TestContentView:
    def test_runtimes_are_the_only_exclusion(self):
        # Two serial runs of the same plan differ only in measured
        # runtimes; the content view must make them identical while
        # still containing the series and plan provenance.
        a, _ = execute_plan(make_plan(), backend=SerialBackend())
        b, _ = execute_plan(make_plan(), backend=SerialBackend())
        assert a.to_json() != b.to_json()  # wall-clock differs
        assert result_set_content_json(a) == result_set_content_json(b)
        assert '"series"' in result_set_content_json(a)
        assert '"runtimes"' not in result_set_content_json(a)

    def test_accepts_json_text(self):
        result, _ = execute_plan(make_plan(), backend=SerialBackend())
        assert result_set_content_json(
            result.to_json()
        ) == result_set_content_json(result)

    def test_content_differs_when_results_differ(self):
        a, _ = execute_plan(make_plan(), backend=SerialBackend())
        b, _ = execute_plan(make_plan(seed=1), backend=SerialBackend())
        assert result_set_content_json(a) != result_set_content_json(b)


class TestChaosEquivalence:
    def test_failure_free_remote_matches_serial(self, serial_reference):
        result, report = execute_plan(make_plan(), backend=remote())
        assert_content_identical(result, serial_reference)
        assert report.retries == 0
        assert report.workers_lost == 0

    def test_kill_schedule_matches_serial(self, serial_reference):
        result, report = execute_plan(
            make_plan(), backend=remote(ChaosPolicy(kill_after=2))
        )
        assert_content_identical(result, serial_reference)
        assert report.workers_lost == 1

    def test_immediate_double_kill_matches_serial(self, serial_reference):
        # Both initial workers die on their first task; replacements
        # (unarmed) recompute everything lost.
        result, report = execute_plan(
            make_plan(),
            backend=remote(ChaosPolicy(kill_after=0, kill_limit=2)),
        )
        assert_content_identical(result, serial_reference)
        assert report.workers_lost >= 2
        assert report.retries >= 2

    def test_dropped_connections_match_serial(self, serial_reference):
        result, _ = execute_plan(
            make_plan(), backend=remote(ChaosPolicy(drop_after=1))
        )
        assert_content_identical(result, serial_reference)

    def test_degraded_run_matches_serial(self, serial_reference):
        # Retry budget of 1 attempt + perpetual kills: the whole grid
        # ends up executing in the parent, and still folds the same bits.
        degrade_now = RetryPolicy(
            max_attempts=1,
            backoff_base_s=0.0,
            backoff_max_s=0.0,
            jitter=0.0,
            degrade_in_process=True,
        )
        result, report = execute_plan(
            make_plan(),
            backend=remote(
                ChaosPolicy(kill_after=0, kill_limit=99),
                retry=degrade_now,
                max_restarts=1,
            ),
        )
        assert_content_identical(result, serial_reference)
        assert report.degraded == 6

    def test_chaos_run_with_store_is_resumable_and_identical(
        self, tmp_path, serial_reference
    ):
        # A chaos run persisting through the artifact store must leave a
        # cache a later (clean, serial) run hits byte-for-byte.
        plan = make_plan()
        store = ArtifactStore(tmp_path)
        chaotic, report = execute_plan(
            plan,
            backend=remote(ChaosPolicy(kill_after=1)),
            store=store,
        )
        assert_content_identical(chaotic, serial_reference)
        assert store.has_result(plan_cache_key(plan))
        warm, warm_report = execute_plan(
            plan, backend=SerialBackend(), store=store
        )
        assert warm_report.cache == "hit"
        assert warm.to_json() == chaotic.to_json()  # byte-identical
