"""Tests for the cache-and-backend-aware plan executor.

Pins the subsystem's contract: every backend's series are bit-identical
to the plain ``run_plan`` path, a warm re-run is a pure cache hit with
byte-identical result JSON, and a killed sweep resumes from its
completed tasks to the same numbers an uninterrupted run produces.
"""

import pytest

from repro.api import ExperimentPlan, SolverSpec, SweepSpec, run_plan
from repro.exec import (
    ArtifactStore,
    ExecutionReport,
    FaultStats,
    LocalClusterBackend,
    ProcessBackend,
    RemoteClusterBackend,
    SerialBackend,
    build_sweep_tasks,
    execute_plan,
    plan_cache_key,
)


def make_plan(**overrides):
    kwargs = dict(
        name="exec test",
        sweep=SweepSpec("capacity", (0.1, 0.2)),
        solvers=(SolverSpec("gen"), SolverSpec("independent")),
        base={"num_servers": 3, "num_users": 8, "num_models": 9},
        num_topologies=3,
        seed=0,
    )
    kwargs.update(overrides)
    return ExperimentPlan(**kwargs)


def assert_same_series(a, b):
    assert list(a.series) == list(b.series)
    for label in a.series:
        assert (a.series[label].means == b.series[label].means).all()
        assert (a.series[label].stds == b.series[label].stds).all()
        assert (a.series[label].counts == b.series[label].counts).all()


class CountingBackend:
    """Serial backend that counts how many tasks actually ran."""

    name = "counting"

    def __init__(self):
        self.ran = 0
        self._inner = SerialBackend()

    def map(self, fn, payloads):
        def _iterate():
            for result in self._inner.map(fn, payloads):
                self.ran += 1
                yield result

        return _iterate()


class KillAfterBackend:
    """Serial backend that dies after ``after`` completed tasks."""

    name = "kill-after"

    def __init__(self, after):
        self.after = after
        self._inner = SerialBackend()

    def map(self, fn, payloads):
        def _iterate():
            for index, result in enumerate(self._inner.map(fn, payloads)):
                if index >= self.after:
                    raise RuntimeError("simulated mid-sweep kill")
                yield result

        return _iterate()


class TestTaskGrid:
    def test_grid_shape_and_order(self):
        plan = make_plan()
        tasks = build_sweep_tasks(plan)
        assert len(tasks) == 2 * 3  # points x topologies
        assert [t.task_id for t in tasks] == [
            "x0-t0", "x0-t1", "x0-t2", "x1-t0", "x1-t1", "x1-t2",
        ]
        assert [t.x_index for t in tasks] == [0, 0, 0, 1, 1, 1]

    def test_seeds_match_the_runner_derivation(self):
        plan = make_plan()
        tasks = build_sweep_tasks(plan)
        for task in tasks:
            expected = hash(
                (plan.seed, task.x_index, task.topology_index)
            ) % (2**31)
            assert task.scenario_seed == expected


class TestBackendEquivalence:
    def test_all_backends_bit_identical_to_plain_run_plan(self):
        plan = make_plan()
        plain = run_plan(plan)
        for backend in (
            SerialBackend(),
            ProcessBackend(workers=2),
            LocalClusterBackend(shards=3),
            RemoteClusterBackend(workers=2, heartbeat_interval=0.05),
        ):
            result, report = execute_plan(plan, backend=backend)
            assert_same_series(plain, result)
            assert report.cache == "off"
            assert report.tasks_run == 6

    def test_run_plan_wrapper_accepts_backend(self):
        plan = make_plan()
        plain = run_plan(plan)
        routed = run_plan(plan, backend=LocalClusterBackend(shards=2))
        assert_same_series(plain, routed)

    def test_metadata_matches_the_runner_path(self):
        plan = make_plan(workers=2)
        plain = run_plan(plan)
        result, _ = execute_plan(plan, backend=SerialBackend())
        assert result.metadata == plain.metadata


class TestFullResultCache:
    def test_warm_rerun_is_a_pure_hit_with_identical_bytes(self, tmp_path):
        plan = make_plan()
        store = ArtifactStore(tmp_path)
        cold, cold_report = execute_plan(
            plan, backend=SerialBackend(), store=store
        )
        warm, warm_report = execute_plan(
            plan, backend=SerialBackend(), store=store
        )
        assert cold_report.cache == "miss"
        assert warm_report.cache == "hit"
        assert warm_report.tasks_run == 0
        assert warm.to_json() == cold.to_json()  # byte-identical

    def test_hits_cross_backends(self, tmp_path):
        plan = make_plan()
        store = ArtifactStore(tmp_path)
        cold, _ = execute_plan(plan, backend=ProcessBackend(2), store=store)
        warm, report = execute_plan(
            plan, backend=LocalClusterBackend(2), store=store
        )
        assert report.cache == "hit"
        assert warm.to_json() == cold.to_json()

    def test_hits_cross_workers(self, tmp_path):
        # workers is excluded from the cache key: same content address.
        store = ArtifactStore(tmp_path)
        execute_plan(make_plan(workers=1), store=store)
        _, report = execute_plan(make_plan(workers=2), store=store)
        assert report.cache == "hit"

    def test_plan_edit_misses(self, tmp_path):
        store = ArtifactStore(tmp_path)
        execute_plan(make_plan(), store=store)
        _, report = execute_plan(make_plan(seed=1), store=store)
        assert report.cache == "miss"

    def test_partials_cleared_once_the_full_result_lands(self, tmp_path):
        # The full result supersedes per-task partials; a completed run
        # must not leave one dead file per task behind.
        plan = make_plan()
        store = ArtifactStore(tmp_path)
        execute_plan(plan, store=store)
        key = plan_cache_key(plan)
        assert store.has_result(key)
        assert store.completed_tasks(key) == set()

    def test_run_plan_wrapper_accepts_store(self, tmp_path):
        plan = make_plan()
        store = ArtifactStore(tmp_path)
        first = run_plan(plan, store=store)
        second = run_plan(plan, store=store)
        assert second.to_json() == first.to_json()
        assert store.has_result(plan_cache_key(plan))

    def test_comparison_kind_caches_whole_results(self, tmp_path):
        plan = ExperimentPlan(
            name="cmp",
            solvers=(SolverSpec("gen"), SolverSpec("independent")),
            base={"num_servers": 3, "num_users": 8, "num_models": 9},
            num_topologies=2,
        )
        store = ArtifactStore(tmp_path)
        cold, cold_report = execute_plan(plan, store=store)
        warm, warm_report = execute_plan(plan, store=store)
        assert cold_report.cache == "miss"
        assert warm_report.cache == "hit"
        assert warm.to_json() == cold.to_json()


class TestResume:
    def test_killed_sweep_resumes_from_completed_tasks(self, tmp_path):
        plan = make_plan()
        uninterrupted = run_plan(plan)

        store = ArtifactStore(tmp_path)
        key = plan_cache_key(plan)
        killed_after = 4
        with pytest.raises(RuntimeError, match="simulated mid-sweep kill"):
            execute_plan(
                plan, backend=KillAfterBackend(killed_after), store=store
            )
        # The completed prefix survived the kill...
        assert len(store.completed_tasks(key)) == killed_after
        assert not store.has_result(key)

        # ...and the resumed run executes only the remainder.
        counting = CountingBackend()
        resumed, report = execute_plan(plan, backend=counting, store=store)
        assert report.cache == "partial"
        assert report.tasks_cached == killed_after
        assert report.tasks_run == 6 - killed_after
        assert counting.ran == 6 - killed_after
        # Bit-identical to the uninterrupted run: restored scores carry
        # the same bits (JSON floats round-trip exactly) and fold in the
        # same order.
        assert_same_series(uninterrupted, resumed)

    def test_resume_then_rerun_is_a_full_hit(self, tmp_path):
        plan = make_plan()
        store = ArtifactStore(tmp_path)
        with pytest.raises(RuntimeError):
            execute_plan(plan, backend=KillAfterBackend(2), store=store)
        execute_plan(plan, store=store)
        _, report = execute_plan(plan, store=store)
        assert report.cache == "hit"

    def test_report_summary_mentions_cache_state(self, tmp_path):
        plan = make_plan()
        store = ArtifactStore(tmp_path)
        _, miss = execute_plan(plan, store=store)
        _, hit = execute_plan(plan, store=store)
        assert "cache miss" in miss.summary()
        assert "cache hit" in hit.summary()
        nocache = ExecutionReport(backend="serial", cache="off", tasks_run=3)
        assert "cache off" in nocache.summary()


class FaultyStatsBackend:
    """Serial backend that pretends its run survived some faults."""

    name = "faulty"

    def __init__(self, **counters):
        self._counters = counters
        self._inner = SerialBackend()
        self.stats = FaultStats()

    def map(self, fn, payloads):
        self.stats = FaultStats(**self._counters)
        return self._inner.map(fn, payloads)


class TestFaultReporting:
    def test_backend_stats_fold_into_the_report(self):
        backend = FaultyStatsBackend(retries=2, workers_lost=1, degraded=3)
        _, report = execute_plan(make_plan(), backend=backend)
        assert report.retries == 2
        assert report.workers_lost == 1
        assert report.re_dispatched == 0
        assert report.degraded == 3

    def test_summary_prints_fault_counters(self):
        backend = FaultyStatsBackend(retries=2, workers_lost=1)
        _, report = execute_plan(make_plan(), backend=backend)
        summary = report.summary()
        assert "2 retried" in summary
        assert "1 worker(s) lost" in summary
        assert "re-dispatched" not in summary  # zero counters stay out

    def test_clean_run_summary_has_no_fault_tail(self):
        _, report = execute_plan(make_plan(), backend=SerialBackend())
        assert report.retries == 0
        assert "retried" not in report.summary()

    def test_counters_survive_a_mid_sweep_failure(self, tmp_path):
        # Even when the map iteration dies, the report must account the
        # faults the backend recorded up to the failure.
        class DoomedBackend(FaultyStatsBackend):
            def map(self, fn, payloads):
                self.stats = FaultStats(**self._counters)

                def _iterate():
                    raise RuntimeError("substrate imploded")
                    yield  # pragma: no cover

                return _iterate()

        backend = DoomedBackend(workers_lost=4)
        with pytest.raises(RuntimeError, match="substrate imploded"):
            execute_plan(make_plan(), backend=backend)


class TestRetryDeterminism:
    def test_exactly_k_transient_failures_are_invisible(self):
        # Both initial workers are armed to die on their 3rd task
        # receipt: exactly K=2 tasks are lost and retried. The result's
        # deterministic content must be byte-identical to serial and
        # the report must record exactly K retries.
        from repro.exec.faults import ChaosPolicy
        from repro.exec.retry import RetryPolicy
        from repro.sim.serialization import result_set_content_json

        plan = make_plan()
        serial_result, _ = execute_plan(plan, backend=SerialBackend())
        backend = RemoteClusterBackend(
            workers=2,
            retry=RetryPolicy(
                max_attempts=3,
                backoff_base_s=0.0,
                backoff_max_s=0.0,
                jitter=0.0,
                degrade_in_process=True,
            ),
            heartbeat_interval=0.05,
            chaos=ChaosPolicy(kill_after=2, kill_limit=2),
        )
        chaotic, report = execute_plan(plan, backend=backend)
        assert report.retries == 2
        assert report.workers_lost == 2
        assert report.degraded == 0
        assert_same_series(serial_result, chaotic)
        assert result_set_content_json(chaotic) == result_set_content_json(
            serial_result
        )
