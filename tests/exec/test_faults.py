"""Tests for the failure taxonomy and the deterministic chaos harness."""

import pickle

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.exec.faults import (
    ArtifactChaos,
    ChaosPolicy,
    ExecutionError,
    FaultStats,
    TaskError,
    TaskFailure,
    TaskTimeout,
    WorkerLost,
    is_transient,
)


class TestTaxonomy:
    def test_transience_flags(self):
        # TaskError is deterministic (the task itself raised); the rest
        # are substrate failures and therefore retryable.
        assert not TaskError("x").transient
        assert WorkerLost("x").transient
        assert TaskTimeout("x").transient
        assert is_transient(WorkerLost("x"))
        assert is_transient(TaskTimeout("x"))
        assert not is_transient(TaskError("x"))
        assert not is_transient(ValueError("x"))

    def test_broken_executor_is_transient(self):
        from concurrent.futures import BrokenExecutor
        from concurrent.futures.process import BrokenProcessPool

        assert is_transient(BrokenExecutor("pool died"))
        assert is_transient(BrokenProcessPool("pool died"))

    def test_hierarchy(self):
        # A timeout is a species of lost worker; everything is a typed
        # ExecutionError and a ReproError (one except catches the layer).
        assert issubclass(TaskTimeout, WorkerLost)
        assert issubclass(WorkerLost, ExecutionError)
        assert issubclass(TaskError, ExecutionError)
        assert issubclass(ExecutionError, ReproError)
        assert issubclass(ExecutionError, RuntimeError)

    def test_message_names_the_task_index(self):
        error = WorkerLost("worker pool broke", task_index=7)
        assert error.task_index == 7
        assert "task index 7" in str(error)

    def test_task_failure_pickles(self):
        # TaskFailure crosses process boundaries; it must survive the
        # pickle round-trip with its index and description intact.
        failure = TaskFailure(5, "ValueError: boom")
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.task_index == 5
        assert clone.description == "ValueError: boom"
        assert "task 5" in str(clone)


class TestFaultStats:
    def test_defaults_are_clean(self):
        stats = FaultStats()
        assert not stats.any()
        assert stats.as_dict() == {
            "retries": 0,
            "workers_lost": 0,
            "re_dispatched": 0,
            "degraded": 0,
        }

    def test_merge_accumulates(self):
        stats = FaultStats(retries=1, workers_lost=2)
        stats.merge(FaultStats(retries=3, re_dispatched=1, degraded=4))
        assert stats.retries == 4
        assert stats.workers_lost == 2
        assert stats.re_dispatched == 1
        assert stats.degraded == 4
        assert stats.any()


class TestChaosPolicy:
    def test_parse_kill_worker(self):
        chaos = ChaosPolicy.parse("kill-worker:2")
        assert chaos.kill_after == 2
        assert chaos.kill_limit == 1

    def test_parse_kill_worker_with_limit(self):
        chaos = ChaosPolicy.parse("kill-worker:2x3")
        assert chaos.kill_after == 2
        assert chaos.kill_limit == 3

    def test_parse_compound_spec(self):
        chaos = ChaosPolicy.parse(
            "kill-worker:1,drop-conn:2,heartbeat-delay:0.5,"
            "straggle:3x0.25,seed:7"
        )
        assert chaos.kill_after == 1
        assert chaos.drop_after == 2
        assert chaos.heartbeat_delay_s == 0.5
        assert chaos.straggle_every == 3
        assert chaos.straggle_s == 0.25
        assert chaos.seed == 7

    def test_parse_rejects_unknown_facet(self):
        with pytest.raises(ConfigurationError, match="unknown chaos facet"):
            ChaosPolicy.parse("explode:1")

    def test_parse_rejects_garbage_values(self):
        with pytest.raises(ConfigurationError, match="invalid chaos facet"):
            ChaosPolicy.parse("kill-worker:soon")

    def test_parse_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="empty chaos spec"):
            ChaosPolicy.parse("  ,  ")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosPolicy(kill_after=-1)
        with pytest.raises(ConfigurationError):
            ChaosPolicy(straggle_every=0)
        with pytest.raises(ConfigurationError):
            ChaosPolicy(heartbeat_delay_s=-0.1)

    def test_arming_is_bounded_by_worker_id(self):
        # Ids below the facet limit are armed; replacement workers
        # (fresh, higher ids) never are — chaos always converges.
        chaos = ChaosPolicy(kill_after=2, kill_limit=2, drop_after=5)
        assert chaos.armed_for(0).kill_after == 2
        assert chaos.armed_for(1).kill_after == 2
        assert chaos.armed_for(2).kill_after is None
        assert chaos.armed_for(0).drop_after == 5
        assert chaos.armed_for(1).drop_after is None

    def test_straggle_schedule_is_deterministic(self):
        chaos = ChaosPolicy(straggle_every=3, straggle_s=0.5, seed=1)
        schedule = [chaos.straggles(i) for i in range(6)]
        assert schedule == [
            chaos.straggles(i) for i in range(6)
        ]  # stable
        assert schedule == [False, False, True, False, False, True]

    def test_no_straggle_without_duration(self):
        chaos = ChaosPolicy(straggle_every=2, straggle_s=0.0)
        assert not any(chaos.straggles(i) for i in range(10))


class TestArtifactChaos:
    def test_truncate_is_seeded(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(b"x" * 1000)
        b.write_bytes(b"x" * 1000)
        kept_a = ArtifactChaos(seed=3).truncate(a)
        kept_b = ArtifactChaos(seed=3).truncate(b)
        assert kept_a == kept_b  # same seed, same cut
        assert 0 <= kept_a < 1000

    def test_corrupt_changes_bytes_in_place(self, tmp_path):
        path = tmp_path / "f"
        pristine = b"y" * 500
        path.write_bytes(pristine)
        ArtifactChaos(seed=0).corrupt(path)
        mangled = path.read_bytes()
        assert len(mangled) == 500
        assert mangled != pristine

    def test_zero_leaves_an_empty_husk(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"z" * 100)
        ArtifactChaos().zero(path)
        assert path.read_bytes() == b""
