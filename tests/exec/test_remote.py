"""Tests for the fault-tolerant remote socket backend.

Exercises every recovery path with deterministic chaos: worker kills,
dropped connections, silent heartbeats, stragglers, retry exhaustion
and in-process degradation — asserting results stay correct and in
submission order under all of them.
"""

import time

import pytest

from repro.errors import ConfigurationError
from repro.exec.faults import ChaosPolicy, TaskError, WorkerLost
from repro.exec.remote import RemoteClusterBackend
from repro.exec.retry import RetryPolicy

#: Fast knobs so chaos runs finish in well under a second each.
FAST = dict(heartbeat_interval=0.05)
FAST_RETRY = RetryPolicy(
    max_attempts=3, backoff_base_s=0.0, backoff_max_s=0.0, jitter=0.0
)
FAST_DEGRADE = RetryPolicy(
    max_attempts=1,
    backoff_base_s=0.0,
    backoff_max_s=0.0,
    jitter=0.0,
    degrade_in_process=True,
)


def _square(value):
    return value * value


def _slow_square(payload):
    duration, value = payload
    time.sleep(duration)
    return value * value


def _raise_on_three(value):
    if value == 3:
        raise ValueError(f"boom at {value}")
    return value * value


class TestHappyPath:
    def test_maps_in_order(self):
        backend = RemoteClusterBackend(workers=2, **FAST)
        assert list(backend.map(_square, list(range(8)))) == [
            v * v for v in range(8)
        ]
        assert not backend.stats.any()

    def test_single_worker(self):
        backend = RemoteClusterBackend(workers=1, **FAST)
        assert list(backend.map(_square, [3, 1, 2])) == [9, 1, 4]

    def test_empty(self):
        backend = RemoteClusterBackend(workers=2, **FAST)
        assert list(backend.map(_square, [])) == []

    def test_more_workers_than_tasks(self):
        backend = RemoteClusterBackend(workers=4, **FAST)
        assert list(backend.map(_square, [5])) == [25]


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            RemoteClusterBackend(workers=0)
        with pytest.raises(ConfigurationError):
            RemoteClusterBackend(heartbeat_interval=0.0)
        with pytest.raises(ConfigurationError):
            RemoteClusterBackend(heartbeat_timeout=-1.0)
        with pytest.raises(ConfigurationError):
            RemoteClusterBackend(task_timeout=0.0)
        with pytest.raises(ConfigurationError):
            RemoteClusterBackend(max_restarts=-1)


class TestDeterministicFailures:
    def test_task_exception_fails_fast_as_task_error(self):
        # Whatever the retry policy says: a raising task is
        # deterministic, so retrying cannot help.
        backend = RemoteClusterBackend(workers=2, retry=FAST_RETRY, **FAST)
        with pytest.raises(TaskError, match="boom at 3") as info:
            list(backend.map(_raise_on_three, list(range(6))))
        assert info.value.task_index == 3
        assert backend.stats.retries == 0


class TestTransientFailures:
    def test_killed_worker_is_retried(self):
        # Worker 0 dies on receiving its 3rd task: exactly one in-flight
        # task is lost, re-queued and recomputed to the same answer.
        backend = RemoteClusterBackend(
            workers=2,
            retry=FAST_RETRY,
            chaos=ChaosPolicy(kill_after=2),
            **FAST,
        )
        assert list(backend.map(_square, list(range(8)))) == [
            v * v for v in range(8)
        ]
        assert backend.stats.workers_lost == 1
        assert backend.stats.retries == 1

    def test_dropped_connection_loses_no_completed_work(self):
        # The armed worker closes its connection after *completing* a
        # task: every result it already sent is kept. At most the one
        # task the parent races onto the dying socket is retried.
        backend = RemoteClusterBackend(
            workers=2,
            retry=FAST_RETRY,
            chaos=ChaosPolicy(drop_after=2),
            **FAST,
        )
        assert list(backend.map(_square, list(range(8)))) == [
            v * v for v in range(8)
        ]
        assert backend.stats.workers_lost == 1
        assert backend.stats.retries <= 1

    def test_silent_heartbeat_declares_the_worker_lost(self):
        # Worker 0's heartbeats arrive ~1s late while its task takes
        # 0.5s: the liveness monitor declares it dead mid-task and a
        # fresh (unarmed) replacement recomputes the task.
        backend = RemoteClusterBackend(
            workers=2,
            retry=FAST_RETRY,
            heartbeat_interval=0.05,
            heartbeat_timeout=0.3,
            chaos=ChaosPolicy(heartbeat_delay_s=1.0),
        )
        payloads = [(0.5, v) for v in range(4)]
        assert list(backend.map(_slow_square, payloads)) == [
            v * v for v in range(4)
        ]
        assert backend.stats.workers_lost >= 1
        assert backend.stats.retries >= 1

    def test_straggler_is_redispatched(self):
        # Task 0 straggles for 2s on worker 0; past task_timeout it is
        # speculatively re-dispatched to an idle worker, whose copy wins.
        backend = RemoteClusterBackend(
            workers=2,
            retry=FAST_RETRY,
            task_timeout=0.3,
            chaos=ChaosPolicy(straggle_every=100, straggle_s=2.0),
            **FAST,
        )
        assert list(backend.map(_square, list(range(6)))) == [
            v * v for v in range(6)
        ]
        assert backend.stats.re_dispatched >= 1

    def test_no_retry_raises_typed_worker_lost(self):
        backend = RemoteClusterBackend(
            workers=1,
            retry=RetryPolicy(max_attempts=1),
            chaos=ChaosPolicy(kill_after=0),
            **FAST,
        )
        with pytest.raises(WorkerLost) as info:
            list(backend.map(_square, list(range(3))))
        assert info.value.task_index is not None

    def test_pool_exhaustion_degrades_in_process(self):
        # Every armed worker (and there are more arming grants than
        # restart budget) dies on its first task; the sweep must still
        # complete via the in-process rung.
        backend = RemoteClusterBackend(
            workers=2,
            retry=FAST_DEGRADE,
            chaos=ChaosPolicy(kill_after=0, kill_limit=99),
            max_restarts=1,
            **FAST,
        )
        assert list(backend.map(_square, list(range(4)))) == [
            v * v for v in range(4)
        ]
        assert backend.stats.degraded == 4
        assert backend.stats.workers_lost >= 2

    def test_stats_reset_between_map_calls(self):
        backend = RemoteClusterBackend(
            workers=2,
            retry=FAST_RETRY,
            chaos=ChaosPolicy(kill_after=2),
            **FAST,
        )
        list(backend.map(_square, list(range(8))))
        assert backend.stats.any()
        # Chaos re-arms worker ids 0..kill_limit-1 every map call, but
        # the stats must describe only the latest call.
        list(backend.map(_square, [1]))
        assert backend.stats.workers_lost <= 1
