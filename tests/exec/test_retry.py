"""Tests for the retry policy: budgets, deterministic backoff, defaults."""

import pytest

from repro.errors import ConfigurationError
from repro.exec.retry import (
    NO_RETRY,
    RetryPolicy,
    default_retry_policy,
)


class TestValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)


class TestBudget:
    def test_retries_is_attempts_minus_one(self):
        assert RetryPolicy(max_attempts=4).retries == 3
        assert NO_RETRY.retries == 0

    def test_exhaustion(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(1)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_no_retry_exhausts_on_first_failure(self):
        assert NO_RETRY.exhausted(1)


class TestBackoff:
    def test_deterministic_for_same_task_and_attempt(self):
        # The whole retry timeline of a run must be reproducible: same
        # task (jitter seed) + same attempt -> exactly the same wait.
        policy = RetryPolicy(max_attempts=5)
        assert policy.delay_s(2, 17) == policy.delay_s(2, 17)

    def test_distinct_tasks_desynchronise(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.5)
        assert policy.delay_s(1, 0) != policy.delay_s(1, 1)

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            max_attempts=10,
            backoff_base_s=0.1,
            backoff_factor=2.0,
            backoff_max_s=0.4,
            jitter=0.0,
        )
        assert policy.delay_s(1, 0) == pytest.approx(0.1)
        assert policy.delay_s(2, 0) == pytest.approx(0.2)
        assert policy.delay_s(3, 0) == pytest.approx(0.4)
        assert policy.delay_s(4, 0) == pytest.approx(0.4)  # capped

    def test_jitter_bounded_by_amplitude(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_base_s=1.0, backoff_max_s=1.0, jitter=0.25
        )
        for seed in range(50):
            delay = policy.delay_s(1, seed)
            assert 1.0 <= delay < 1.25

    def test_attempt_zero_is_free(self):
        assert RetryPolicy(max_attempts=2).delay_s(0, 0) == 0.0


class TestDefaults:
    def test_no_retry_fails_fast(self):
        assert NO_RETRY.max_attempts == 1
        assert not NO_RETRY.degrade_in_process

    def test_cli_default_degrades(self):
        # --retries N means: N retries, then finish in-process rather
        # than failing the sweep.
        policy = default_retry_policy(3)
        assert policy.max_attempts == 4
        assert policy.degrade_in_process

    def test_cli_default_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            default_retry_policy(-1)
