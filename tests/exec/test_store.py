"""Tests for the content-addressed artifact store.

Covers the satellite checklist explicitly: cache-key sensitivity (a plan
edit misses, reorder-invariant fields hit), concurrent-writer safety of
the atomic writes, and corrupt-entry resilience.
"""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import ExperimentPlan, SolverSpec, SweepSpec
from repro.errors import ConfigurationError
from repro.exec.store import (
    CODE_VERSION_SALT,
    ArtifactStore,
    canonical_plan_payload,
    plan_cache_key,
)


def make_plan(**overrides):
    kwargs = dict(
        name="key test",
        sweep=SweepSpec("capacity", (0.1, 0.2)),
        solvers=(SolverSpec("gen"), SolverSpec("independent")),
        base={"num_servers": 2, "num_users": 4, "num_models": 6},
        num_topologies=2,
        seed=0,
    )
    kwargs.update(overrides)
    return ExperimentPlan(**kwargs)


class TestPlanCacheKey:
    def test_deterministic(self):
        assert plan_cache_key(make_plan()) == plan_cache_key(make_plan())

    def test_is_sha256_hex(self):
        key = plan_cache_key(make_plan())
        assert len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)

    def test_any_plan_edit_misses(self):
        base_key = plan_cache_key(make_plan())
        edits = [
            make_plan(sweep=SweepSpec("capacity", (0.1, 0.3))),
            make_plan(sweep=SweepSpec("users", (4.0, 8.0))),
            make_plan(seed=1),
            make_plan(num_topologies=3),
            make_plan(name="other name"),
            make_plan(solvers=(SolverSpec("gen"),)),
            make_plan(base={"num_servers": 3, "num_users": 4, "num_models": 6}),
            make_plan(evaluation="monte_carlo"),
        ]
        keys = {plan_cache_key(plan) for plan in edits}
        assert base_key not in keys
        assert len(keys) == len(edits)  # all edits are distinct addresses

    def test_solver_config_edit_misses(self):
        from repro.core import GenConfig

        sparse = make_plan(
            solvers=(
                SolverSpec("gen", config=GenConfig(engine="sparse")),
                SolverSpec("independent"),
            )
        )
        assert plan_cache_key(sparse) != plan_cache_key(make_plan())

    def test_base_dict_insertion_order_invariant(self):
        # Reorder-invariant fields -> hit: dict key order is not content.
        a = make_plan(base={"num_servers": 2, "num_users": 4, "num_models": 6})
        b = make_plan(base={"num_models": 6, "num_servers": 2, "num_users": 4})
        assert plan_cache_key(a) == plan_cache_key(b)

    def test_workers_is_not_content(self):
        # workers only moves tasks between processes (bit-identical
        # results), so it must share one cache address.
        assert plan_cache_key(make_plan(workers=1)) == plan_cache_key(
            make_plan(workers=4)
        )
        assert "workers" not in canonical_plan_payload(make_plan())

    def test_solver_config_workers_is_not_content(self):
        # Per-solver fan-out knobs (SpecConfig.workers is byte-identical
        # across widths) are execution placement, not content...
        from repro.core import SpecConfig

        def spec_plan(workers):
            return make_plan(
                solvers=(
                    SolverSpec("spec", config=SpecConfig(workers=workers)),
                )
            )

        assert plan_cache_key(spec_plan(1)) == plan_cache_key(spec_plan(4))

    def test_solver_config_other_fields_are_content(self):
        # ...but every other config knob is (epsilon changes results).
        from repro.core import SpecConfig

        a = make_plan(
            solvers=(SolverSpec("spec", config=SpecConfig(epsilon=0.1)),)
        )
        b = make_plan(
            solvers=(SolverSpec("spec", config=SpecConfig(epsilon=0.2)),)
        )
        assert plan_cache_key(a) != plan_cache_key(b)

    def test_solver_order_is_content(self):
        # Solver order changes series order in the result -> new address.
        reordered = make_plan(
            solvers=(SolverSpec("independent"), SolverSpec("gen"))
        )
        assert plan_cache_key(reordered) != plan_cache_key(make_plan())

    def test_salt_is_part_of_the_address(self):
        assert CODE_VERSION_SALT  # non-empty: stale-result protection


class TestTaskArtifacts:
    def test_round_trip_exact_floats(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = plan_cache_key(make_plan())
        outcomes = [
            {"Gen": (0.1 + 0.2, 1.5e-3), "Independent": (2.0 / 3.0, 0.25)}
        ]
        store.save_task(key, "x0-t0", outcomes)
        restored = store.load_task(key, "x0-t0")
        # Bit-exact: JSON floats round-trip via repr.
        assert restored == outcomes

    def test_missing_is_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = plan_cache_key(make_plan())
        assert store.load_task(key, "x0-t0") is None
        assert store.load_result(key) is None
        assert store.completed_tasks(key) == set()

    def test_corrupt_task_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = plan_cache_key(make_plan())
        path = store.task_path(key, "x0-t0")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{torn write")
        assert store.load_task(key, "x0-t0") is None
        path.write_text(json.dumps({"format": "something-else"}))
        assert store.load_task(key, "x0-t0") is None

    def test_corrupt_result_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = plan_cache_key(make_plan())
        path = store.result_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json at all")
        assert store.load_result(key) is None

    @pytest.mark.parametrize(
        "payload",
        [
            "[]",  # parseable but not even a dict
            json.dumps({"format": "trimcaching-result-set-v1"}),  # no body
            json.dumps({"format": "trimcaching-result-set-v1",
                        "experiment": {"format": "trimcaching-experiment-v1"}}),
        ],
    )
    def test_foreign_but_parseable_result_is_a_miss(self, tmp_path, payload):
        # Valid JSON that is not a result set must degrade to a miss,
        # never crash the sweep.
        store = ArtifactStore(tmp_path)
        key = plan_cache_key(make_plan())
        path = store.result_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(payload)
        assert store.load_result(key) is None

    def test_completed_tasks_listing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = plan_cache_key(make_plan())
        for task_id in ("x0-t0", "x0-t1", "x1-t0"):
            store.save_task(key, task_id, [{"Gen": (0.5, 0.1)}])
        assert store.completed_tasks(key) == {"x0-t0", "x0-t1", "x1-t0"}
        store.clear_tasks(key)
        assert store.completed_tasks(key) == set()

    def test_malformed_addresses_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.plan_dir("../escape")
        with pytest.raises(ConfigurationError):
            store.task_path("ab12", "../../etc/passwd")
        with pytest.raises(ConfigurationError):
            store.task_path("ab12", ".hidden")


class TestConcurrentWriters:
    def test_many_writers_one_task_never_torn(self, tmp_path):
        """Hammer one task path from many threads; every read parses."""
        store = ArtifactStore(tmp_path)
        key = plan_cache_key(make_plan())
        rounds = 60

        def write(i):
            store.save_task(key, "x0-t0", [{"Gen": (i / rounds, float(i))}])
            return store.load_task(key, "x0-t0")

        with ThreadPoolExecutor(max_workers=8) as pool:
            reads = list(pool.map(write, range(rounds)))
        # Every interleaved read saw a complete payload (never None/torn),
        # and the final state is one of the writes.
        assert all(read is not None for read in reads)
        final = store.load_task(key, "x0-t0")
        assert final[0]["Gen"][1] in {float(i) for i in range(rounds)}

    def test_concurrent_distinct_tasks(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = plan_cache_key(make_plan())

        def write(i):
            store.save_task(key, f"x0-t{i}", [{"Gen": (0.5, float(i))}])

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(write, range(40)))
        assert store.completed_tasks(key) == {f"x0-t{i}" for i in range(40)}
        for i in range(40):
            assert store.load_task(key, f"x0-t{i}") == [{"Gen": (0.5, float(i))}]

    def test_no_temp_litter_after_writes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = plan_cache_key(make_plan())
        for i in range(10):
            store.save_task(key, "x0-t0", [{"Gen": (0.1, float(i))}])
        leftovers = list((store.plan_dir(key) / "tasks").glob("*.tmp"))
        assert leftovers == []
