"""Crash-consistency fuzz for the artifact store.

The store's contract under disk carnage: a truncated, corrupted or
zero-byte artifact — full result or per-task partial — reads back as a
cache **miss** (``None``), never as an exception and never as wrong
data silently accepted. And a sweep killed between ``save_task`` calls,
even with its newest partial torn, resumes to a result bit-identical
to an uninterrupted run.
"""

import pytest

from repro.api import ExperimentPlan, SolverSpec, SweepSpec, run_plan
from repro.exec import (
    ArtifactChaos,
    ArtifactStore,
    execute_plan,
    plan_cache_key,
)
from repro.exec.backends import SerialBackend


def make_plan(**overrides):
    kwargs = dict(
        name="store crash",
        sweep=SweepSpec("capacity", (0.1, 0.2)),
        solvers=(SolverSpec("gen"), SolverSpec("independent")),
        base={"num_servers": 3, "num_users": 8, "num_models": 9},
        num_topologies=3,
        seed=0,
    )
    kwargs.update(overrides)
    return ExperimentPlan(**kwargs)


def assert_same_series(a, b):
    assert list(a.series) == list(b.series)
    for label in a.series:
        assert (a.series[label].means == b.series[label].means).all()
        assert (a.series[label].stds == b.series[label].stds).all()
        assert (a.series[label].counts == b.series[label].counts).all()


class KillAfterBackend:
    """Serial backend that dies after ``after`` completed tasks."""

    name = "kill-after"

    def __init__(self, after):
        self.after = after
        self._inner = SerialBackend()

    def map(self, fn, payloads):
        def _iterate():
            for index, result in enumerate(self._inner.map(fn, payloads)):
                if index >= self.after:
                    raise RuntimeError("simulated mid-sweep kill")
                yield result

        return _iterate()


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """One executed plan with its cached artifacts, built once."""
    root = tmp_path_factory.mktemp("pristine-store")
    plan = make_plan()
    store = ArtifactStore(root)
    execute_plan(plan, backend=SerialBackend(), store=store)
    key = plan_cache_key(plan)
    # Rebuild some per-task partials too (the completed run cleared
    # them): kill a fresh store mid-sweep so real partial files exist.
    partial_root = tmp_path_factory.mktemp("pristine-partials")
    partial_store = ArtifactStore(partial_root)
    with pytest.raises(RuntimeError):
        execute_plan(plan, backend=KillAfterBackend(4), store=partial_store)
    return plan, store, key, partial_store


class TestFullResultFuzz:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("mode", ["truncate", "corrupt", "zero"])
    def test_damaged_result_degrades_to_a_miss(self, pristine, mode, seed):
        plan, store, key, _ = pristine
        path = store.result_path(key)
        original = path.read_bytes()
        try:
            getattr(ArtifactChaos(seed=seed), mode)(path)
            damaged = path.read_bytes()
            loaded = store.load_result(key)
            if damaged == original:
                # A seeded truncate can keep ~the whole file; only an
                # actually-damaged file must read back as a miss.
                assert loaded is not None
            else:
                assert loaded is None
        finally:
            path.write_bytes(original)

    def test_pristine_still_loads_after_the_fuzz(self, pristine):
        plan, store, key, _ = pristine
        assert store.load_result(key) is not None


class TestTaskPartialFuzz:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("mode", ["truncate", "corrupt", "zero"])
    def test_damaged_partial_degrades_to_a_miss(self, pristine, mode, seed):
        plan, _, key, partial_store = pristine
        task_id = sorted(partial_store.completed_tasks(key))[0]
        path = partial_store.task_path(key, task_id)
        original = path.read_bytes()
        try:
            getattr(ArtifactChaos(seed=seed), mode)(path)
            damaged = path.read_bytes()
            loaded = partial_store.load_task(key, task_id)
            if damaged == original:
                assert loaded is not None
            else:
                assert loaded is None
        finally:
            path.write_bytes(original)

    def test_foreign_payload_is_a_miss(self, pristine, tmp_path):
        plan, _, key, partial_store = pristine
        task_id = sorted(partial_store.completed_tasks(key))[0]
        path = partial_store.task_path(key, task_id)
        original = path.read_bytes()
        try:
            path.write_text('{"format": "something-else", "outcomes": []}')
            assert partial_store.load_task(key, task_id) is None
            path.write_text("[1, 2, 3]")
            assert partial_store.load_task(key, task_id) is None
        finally:
            path.write_bytes(original)


class TestKilledSweepWithTornPartial:
    def test_resume_after_kill_and_torn_file_is_bit_identical(
        self, tmp_path
    ):
        # Kill the sweep after 4 of 6 tasks, then tear the newest
        # partial mid-write: the resume treats it as never-written,
        # recomputes it, and folds the exact bits of a clean run.
        plan = make_plan()
        uninterrupted = run_plan(plan)
        store = ArtifactStore(tmp_path)
        key = plan_cache_key(plan)
        with pytest.raises(RuntimeError, match="simulated mid-sweep kill"):
            execute_plan(plan, backend=KillAfterBackend(4), store=store)
        completed = sorted(store.completed_tasks(key))
        assert len(completed) == 4
        torn = store.task_path(key, completed[-1])
        torn.write_bytes(torn.read_bytes()[: torn.stat().st_size // 2])

        resumed, report = execute_plan(
            plan, backend=SerialBackend(), store=store
        )
        assert report.cache == "partial"
        assert report.tasks_cached == 3  # the torn one didn't count
        assert report.tasks_run == 3
        assert_same_series(uninterrupted, resumed)

    def test_zero_byte_result_does_not_block_recomputation(self, tmp_path):
        plan = make_plan()
        store = ArtifactStore(tmp_path)
        key = plan_cache_key(plan)
        cold, _ = execute_plan(plan, backend=SerialBackend(), store=store)
        ArtifactChaos().zero(store.result_path(key))
        again, report = execute_plan(
            plan, backend=SerialBackend(), store=store
        )
        assert report.cache == "miss"
        assert_same_series(cold, again)
