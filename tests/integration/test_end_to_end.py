"""End-to-end pipelines exercising the full public API surface."""

import numpy as np
import pytest

from repro import (
    ExhaustiveSearch,
    FineTuner,
    IndependentCaching,
    PlacementEvaluator,
    PlacementInstance,
    ScenarioConfig,
    TrimCachingGen,
    TrimCachingSpec,
    build_scenario,
    hit_ratio,
    make_resnet_root,
    make_transformer_root,
    placement_is_feasible,
)
from repro.data.resnet import RESNET18
from repro.data.transformer import TINY_LLM
from repro.models.popularity import ZipfPopularity
from repro.network.latency import LatencyModel
from repro.sim.mobility_eval import MobilityStudy
from repro.utils.units import GB, MB


class TestScenarioPipeline:
    """Scenario -> solve -> evaluate, the quickstart path."""

    def test_full_pipeline(self):
        scenario = build_scenario(
            ScenarioConfig(
                num_servers=3,
                num_users=6,
                num_models=9,
                storage_bytes=int(0.15 * GB),
            ),
            seed=21,
        )
        result = TrimCachingGen().solve(scenario.instance)
        assert placement_is_feasible(scenario.instance, result.placement)

        evaluator = PlacementEvaluator(scenario)
        assert evaluator.expected_hit_ratio(result.placement) == pytest.approx(
            result.hit_ratio
        )
        monte_carlo = evaluator.monte_carlo_hit_ratio(result.placement, 50, seed=0)
        assert 0.0 <= monte_carlo.mean <= 1.0

        study = MobilityStudy(scenario, sample_every=12)
        trace = study.run(result.placement, horizon_s=300.0, seed=0)
        assert len(trace.hit_ratios) >= 2

    def test_all_solvers_agree_on_feasibility(self):
        scenario = build_scenario(
            ScenarioConfig(
                num_servers=2,
                num_users=5,
                num_models=6,
                storage_bytes=int(0.1 * GB),
            ),
            seed=33,
        )
        for solver in (
            TrimCachingSpec(epsilon=0.1),
            TrimCachingSpec(epsilon=0.0),
            TrimCachingGen(),
            TrimCachingGen(accelerated=False),
            IndependentCaching(),
            ExhaustiveSearch(),
        ):
            result = solver.solve(scenario.instance)
            assert placement_is_feasible(scenario.instance, result.placement), (
                solver
            )
            assert 0.0 <= result.hit_ratio <= 1.0


class TestHandBuiltPipeline:
    """Build a custom library + instance without the scenario helper."""

    def test_lora_library_placement(self):
        """LLM/LoRA workload: one backbone, many adapters, tiny storage."""
        root = make_transformer_root(TINY_LLM)
        tuner = FineTuner()
        for index in range(6):
            tuner.lora_for_transformer(root, TINY_LLM, name=f"assistant-{index}", rank=8)
        library = tuner.build()

        num_models = library.num_models
        demand = ZipfPopularity(per_user_permutation=False).probabilities(
            4, num_models, seed=0
        )
        feasible = np.ones((1, 4, num_models), dtype=bool)
        # Capacity: one backbone + all adapters, but NOT two backbones.
        capacity = int(library.model_size(library.model_ids[0]) * 1.2)
        instance = PlacementInstance(library, demand, feasible, [capacity])

        gen = TrimCachingGen().solve(instance)
        independent = IndependentCaching().solve(instance)
        # Sharing-aware placement fits every adapter; independent fits one
        # full model only.
        assert gen.hit_ratio == pytest.approx(1.0)
        assert independent.hit_ratio < gen.hit_ratio
        assert len(gen.placement.models_on(0)) == 6
        assert len(independent.placement.models_on(0)) == 1

    def test_resnet_family_latency_instance(self):
        """Manual topology + latency-derived feasibility."""
        from repro.network.backhaul import Backhaul
        from repro.network.geometry import Point
        from repro.network.servers import EdgeServer
        from repro.network.topology import NetworkTopology
        from repro.network.users import User

        root = make_resnet_root(RESNET18)
        tuner = FineTuner()
        for index in range(4):
            tuner.freeze_bottom(root, 32, name=f"task-{index}")
        library = tuner.build()

        servers = [
            EdgeServer(server_id=0, position=Point(0, 0), storage_bytes=int(0.1 * GB)),
            EdgeServer(
                server_id=1, position=Point(600, 0), storage_bytes=int(0.1 * GB)
            ),
        ]
        users = [
            User(
                user_id=k,
                position=Point(100 + 400 * k, 0),
                deadlines_s=np.full(4, 1.0),
                inference_latency_s=np.full(4, 0.1),
            )
            for k in range(2)
        ]
        topology = NetworkTopology(servers, users, backhaul=Backhaul())
        sizes = np.array(
            [library.model_size(i) for i in library.model_ids], dtype=float
        )
        latency = LatencyModel(topology, sizes)
        demand = np.full((2, 4), 0.25)
        instance = PlacementInstance(
            library, demand, latency.feasibility(), [s.storage_bytes for s in servers]
        )
        result = TrimCachingGen().solve(instance)
        assert placement_is_feasible(instance, result.placement)
        assert result.hit_ratio > 0.0


class TestGeneralCasePipeline:
    def test_spec_would_explode_gen_succeeds(self, general_scenario):
        """On the general library Gen works; Spec's |A| can explode."""
        gen = TrimCachingGen().solve(general_scenario.instance)
        assert 0.0 <= gen.hit_ratio <= 1.0
        independent = IndependentCaching().solve(general_scenario.instance)
        assert gen.hit_ratio >= independent.hit_ratio - 1e-9
