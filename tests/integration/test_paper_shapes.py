"""Integration tests asserting the paper's qualitative findings.

These are the repo's acceptance tests: each corresponds to a claim in
§VII and checks its *shape* (who wins, directions of trends), not the
absolute numbers, on reduced-scale sweeps.
"""

import numpy as np
import pytest

from repro.core.gen import TrimCachingGen
from repro.core.independent import IndependentCaching
from repro.core.spec import TrimCachingSpec
from repro.sim import experiments
from repro.sim.config import ScenarioConfig
from repro.sim.runner import SweepRunner
from repro.utils.stats import average_relative_gain
from repro.utils.units import GB


@pytest.fixture(scope="module")
def fig4a_small():
    return experiments.fig4a_hit_vs_capacity(
        num_topologies=2, capacities_gb=(0.5, 1.0, 1.5), seed=0, scale=0.1
    )


@pytest.fixture(scope="module")
def fig5a_small():
    return experiments.fig5a_hit_vs_capacity(
        num_topologies=2, capacities_gb=(0.5, 1.0, 1.5), seed=0, scale=0.1
    )


class TestFig4Shapes:
    """Special case (paper Fig. 4)."""

    def test_hit_ratio_increases_with_capacity(self, fig4a_small):
        for algo in fig4a_small.series:
            means = fig4a_small.mean_of(algo)
            assert means[-1] >= means[0] - 1e-9, algo

    def test_spec_beats_gen_beats_independent(self, fig4a_small):
        spec = fig4a_small.mean_of("TrimCaching Spec").mean()
        gen = fig4a_small.mean_of("TrimCaching Gen").mean()
        independent = fig4a_small.mean_of("Independent Caching").mean()
        assert spec >= gen - 0.01
        assert gen > independent

    def test_double_digit_gain_over_independent(self, fig4a_small):
        """Paper: Spec is ~34% above Independent on average (Fig. 4a)."""
        gain = average_relative_gain(
            fig4a_small.mean_of("TrimCaching Spec"),
            fig4a_small.mean_of("Independent Caching"),
        )
        assert gain > 0.08

    def test_hit_ratio_increases_with_servers(self):
        result = experiments.fig4b_hit_vs_servers(
            num_topologies=2, server_counts=(4, 8, 12), seed=1, scale=0.1
        )
        for algo in ("TrimCaching Spec", "TrimCaching Gen"):
            means = result.mean_of(algo)
            assert means[-1] >= means[0] - 0.02, algo

    def test_hit_ratio_decreases_with_users(self):
        result = experiments.fig4c_hit_vs_users(
            num_topologies=2, user_counts=(10, 30, 50), seed=2, scale=0.1
        )
        for algo in result.series:
            means = result.mean_of(algo)
            assert means[-1] <= means[0] + 0.02, algo


class TestFig5Shapes:
    """General case (paper Fig. 5)."""

    def test_gen_beats_independent(self, fig5a_small):
        gen = fig5a_small.mean_of("TrimCaching Gen")
        independent = fig5a_small.mean_of("Independent Caching")
        assert (gen >= independent - 1e-9).all()
        assert gen.mean() > independent.mean()

    def test_hit_ratio_increases_with_capacity(self, fig5a_small):
        for algo in fig5a_small.series:
            means = fig5a_small.mean_of(algo)
            assert means[-1] >= means[0] - 1e-9


class TestFig6Shapes:
    def test_spec_matches_optimal_gen_close(self):
        result = experiments.fig6a_optimality_gap(num_topologies=3, seed=0)
        optimal = result.mean_hit("Optimal (exhaustive)")
        assert result.mean_hit("TrimCaching Spec") == pytest.approx(
            optimal, rel=0.02
        )
        assert result.mean_hit("TrimCaching Gen") >= 0.85 * optimal

    def test_gen_much_faster_than_spec_in_general_case(self):
        result = experiments.fig6b_runtime_general(num_topologies=1, seed=0)
        # Paper: ~3900x; any large factor demonstrates the point.
        assert result.speedup("TrimCaching Gen", "TrimCaching Spec") > 30


class TestFig7Shape:
    def test_graceful_degradation_under_mobility(self):
        """Paper: only ~5-6% degradation over 2 h. We run 30 min at small
        scale and require bounded degradation."""
        result = experiments.fig7_mobility_robustness(
            num_runs=2, horizon_s=1800.0, sample_every=60, seed=0
        )
        for algo in result.series:
            assert result.degradation(algo) < 0.35, algo
            means = result.series[algo].means
            assert means[0] > 0.3  # starts from a useful hit ratio


class TestStorageEfficiencyMechanism:
    """The core mechanism: dedup frees capacity, so TrimCaching stores
    more models per server than Independent Caching."""

    def test_more_models_cached_with_sharing(self):
        config = ScenarioConfig(
            num_servers=3, num_users=8, num_models=12, storage_bytes=int(0.2 * GB)
        )
        from repro.sim.scenario import build_scenario

        scenario = build_scenario(config, seed=5)
        gen = TrimCachingGen().solve(scenario.instance)
        independent = IndependentCaching().solve(scenario.instance)
        assert (
            gen.placement.total_placements()
            >= independent.placement.total_placements()
        )
