"""Tests for the Fig.-1 accuracy-degradation curve (substituted model)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models.accuracy import (
    ANIMAL_CURVE,
    TRANSPORTATION_CURVE,
    AccuracyCurve,
    accuracy_after_freezing,
)


class TestCalibration:
    """The curve must hit the endpoints the paper reports."""

    def test_transportation_drop_at_layer_97(self):
        drop = TRANSPORTATION_CURVE.accuracy(0) - TRANSPORTATION_CURVE.accuracy(97)
        assert drop == pytest.approx(0.052, abs=0.005)

    def test_animal_drop_at_layer_97(self):
        drop = ANIMAL_CURVE.accuracy(0) - ANIMAL_CURVE.accuracy(97)
        assert drop == pytest.approx(0.0405, abs=0.005)

    def test_average_drop_near_paper(self):
        drops = [
            curve.accuracy(0) - curve.accuracy(97)
            for curve in (TRANSPORTATION_CURVE, ANIMAL_CURVE)
        ]
        assert np.mean(drops) == pytest.approx(0.047, abs=0.006)


class TestShape:
    def test_monotone_decreasing(self):
        values = TRANSPORTATION_CURVE.curve(list(range(0, 108, 5)))
        assert (np.diff(values) <= 0).all()

    def test_flat_early_steep_late(self):
        early = TRANSPORTATION_CURVE.accuracy(0) - TRANSPORTATION_CURVE.accuracy(30)
        late = TRANSPORTATION_CURVE.accuracy(77) - TRANSPORTATION_CURVE.accuracy(107)
        assert early < late

    def test_bounds(self):
        for depth in (0, 50, 107):
            acc = ANIMAL_CURVE.accuracy(depth)
            assert 0.0 < acc <= 1.0


class TestValidation:
    def test_depth_range(self):
        with pytest.raises(ConfigurationError):
            TRANSPORTATION_CURVE.accuracy(-1)
        with pytest.raises(ConfigurationError):
            TRANSPORTATION_CURVE.accuracy(108)

    def test_curve_params(self):
        with pytest.raises(ConfigurationError):
            AccuracyCurve(1.5, 0.1, 1.0, 10)
        with pytest.raises(ConfigurationError):
            AccuracyCurve(0.9, 0.95, 1.0, 10)
        with pytest.raises(ConfigurationError):
            AccuracyCurve(0.9, 0.1, 0.0, 10)
        with pytest.raises(ConfigurationError):
            AccuracyCurve(0.9, 0.1, 1.0, 0)

    def test_task_lookup(self):
        assert accuracy_after_freezing(0, "animal") == ANIMAL_CURVE.accuracy(0)
        with pytest.raises(ConfigurationError):
            accuracy_after_freezing(0, "weather")
