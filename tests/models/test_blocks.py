"""Tests for ParameterBlock."""

import pytest

from repro.errors import LibraryError
from repro.models.blocks import ParameterBlock


class TestParameterBlock:
    def test_construction(self):
        block = ParameterBlock(3, 1024, name="conv1", origin="resnet18")
        assert block.block_id == 3
        assert block.size_bytes == 1024
        assert block.origin == "resnet18"

    def test_negative_id_rejected(self):
        with pytest.raises(LibraryError):
            ParameterBlock(-1, 10)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(LibraryError):
            ParameterBlock(0, 0)
        with pytest.raises(LibraryError):
            ParameterBlock(0, -5)

    def test_frozen(self):
        block = ParameterBlock(0, 10)
        with pytest.raises(AttributeError):
            block.size_bytes = 20

    def test_str_uses_name(self):
        assert "conv1" in str(ParameterBlock(0, 10, name="conv1"))
        assert "block7" in str(ParameterBlock(7, 10))

    def test_equality_by_value(self):
        assert ParameterBlock(0, 10) == ParameterBlock(0, 10)
        assert ParameterBlock(0, 10) != ParameterBlock(0, 11)
