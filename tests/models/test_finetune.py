"""Tests for the simulated fine-tuning operations."""

import pytest

from repro.data.resnet import RESNET18, RESNET50
from repro.data.transformer import TINY_LLM
from repro.errors import LibraryError
from repro.models.finetune import (
    FineTuner,
    PretrainedRoot,
    make_resnet_root,
    make_transformer_root,
)


@pytest.fixture
def root18() -> PretrainedRoot:
    return make_resnet_root(RESNET18)


class TestPretrainedRoot:
    def test_resnet_root_layer_count(self, root18):
        assert root18.num_layers == 41

    def test_total_size(self, root18):
        # ~11.2M params fp32 -> ~45 MB.
        assert 40e6 < root18.total_size_bytes < 50e6

    def test_transformer_root(self):
        root = make_transformer_root(TINY_LLM)
        assert root.num_layers == 2 + 4 * TINY_LLM.num_layers

    def test_empty_layers_rejected(self):
        with pytest.raises(LibraryError):
            PretrainedRoot("bad", ())


class TestFreezeBottom:
    def test_prefix_shared_across_siblings(self, root18):
        tuner = FineTuner()
        a = tuner.freeze_bottom(root18, 30, name="a")
        b = tuner.freeze_bottom(root18, 30, name="b")
        assert a.block_ids[:30] == b.block_ids[:30]
        assert set(a.block_ids[30:]).isdisjoint(b.block_ids[30:])

    def test_different_depths_share_common_prefix(self, root18):
        tuner = FineTuner()
        deep = tuner.freeze_bottom(root18, 35, name="deep")
        shallow = tuner.freeze_bottom(root18, 30, name="shallow")
        assert deep.block_ids[:30] == shallow.block_ids[:30]
        # Frozen layers 30-34 of "deep" are shared root blocks that
        # "shallow" retrains as fresh specific blocks.
        assert set(deep.block_ids[30:35]).isdisjoint(shallow.block_ids[30:])

    def test_model_size_preserved_without_head_change(self, root18):
        tuner = FineTuner()
        model = tuner.freeze_bottom(root18, 30, name="m")
        library = tuner.build()
        assert library.model_size(model.model_id) == root18.total_size_bytes

    def test_head_replacement(self, root18):
        tuner = FineTuner()
        model = tuner.freeze_bottom(root18, 30, name="m", head_params=512 * 2 + 2)
        library = tuner.build()
        head_block = library.block(model.block_ids[-1])
        assert head_block.size_bytes == (512 * 2 + 2) * 4

    def test_invalid_depths_rejected(self, root18):
        tuner = FineTuner()
        with pytest.raises(LibraryError):
            tuner.freeze_bottom(root18, 41, name="m")  # head must stay
        with pytest.raises(LibraryError):
            tuner.freeze_bottom(root18, -1, name="m")

    def test_freeze_from_model_parent(self, root18):
        """Second-round fine-tuning (general case) reuses parent blocks."""
        tuner = FineTuner()
        parent = tuner.full_finetune(root18, name="parent")
        child = tuner.freeze_bottom(parent, 20, name="child")
        assert child.block_ids[:20] == parent.block_ids[:20]
        assert set(child.block_ids[20:]).isdisjoint(parent.block_ids)

    def test_two_roots_never_share(self):
        tuner = FineTuner()
        a = tuner.freeze_bottom(make_resnet_root(RESNET18), 30, name="a")
        b = tuner.freeze_bottom(make_resnet_root(RESNET50), 90, name="b")
        assert set(a.block_ids).isdisjoint(b.block_ids)

    def test_conflicting_root_names_rejected(self, root18):
        tuner = FineTuner()
        tuner.freeze_bottom(root18, 30, name="a")
        other = PretrainedRoot("resnet18", make_resnet_root(RESNET50).layers)
        with pytest.raises(LibraryError):
            tuner.freeze_bottom(other, 30, name="b")


class TestFullFinetune:
    def test_shares_nothing(self, root18):
        tuner = FineTuner()
        frozen = tuner.freeze_bottom(root18, 30, name="frozen")
        full = tuner.full_finetune(root18, name="full")
        assert set(full.block_ids).isdisjoint(frozen.block_ids)

    def test_size_matches_root(self, root18):
        tuner = FineTuner()
        model = tuner.full_finetune(root18, name="full")
        library = tuner.build()
        assert library.model_size(model.model_id) == root18.total_size_bytes


class TestLora:
    def test_shares_whole_backbone(self):
        root = make_transformer_root(TINY_LLM)
        tuner = FineTuner()
        a = tuner.lora_for_transformer(root, TINY_LLM, name="a", rank=8)
        b = tuner.lora_for_transformer(root, TINY_LLM, name="b", rank=8)
        assert a.block_ids[:-1] == b.block_ids[:-1]
        assert a.block_ids[-1] != b.block_ids[-1]

    def test_library_savings_are_extreme(self):
        root = make_transformer_root(TINY_LLM)
        tuner = FineTuner()
        for index in range(5):
            tuner.lora_for_transformer(root, TINY_LLM, name=f"m{index}", rank=8)
        stats = tuner.build().sharing_stats()
        # Five LoRA models cost barely more than one backbone.
        assert stats.savings_ratio > 0.75

    def test_invalid_adapter_params(self, root18):
        with pytest.raises(LibraryError):
            FineTuner().lora(root18, name="x", adapter_params=0)


class TestRootAsModel:
    def test_root_published(self, root18):
        tuner = FineTuner()
        model = tuner.add_root_as_model(root18)
        child = tuner.freeze_bottom(root18, 30, name="child")
        assert child.block_ids[:30] == model.block_ids[:30]
        library = tuner.build()
        assert library.model_size(model.model_id) == root18.total_size_bytes


class TestBuild:
    def test_empty_build_rejected(self):
        with pytest.raises(LibraryError):
            FineTuner().build()

    def test_num_models_counter(self, root18):
        tuner = FineTuner()
        assert tuner.num_models == 0
        tuner.freeze_bottom(root18, 30, name="a")
        assert tuner.num_models == 1
