"""Tests for the special/general library generators (paper §VII-A)."""

import pytest

from repro.data.resnet import RESNET18, RESNET34
from repro.errors import ConfigurationError
from repro.models.generators import (
    PAPER_FROZEN_RANGES,
    GeneralCaseConfig,
    SpecialCaseConfig,
    build_general_case_library,
    build_special_case_library,
)


class TestSpecialCase:
    def test_default_paper_scale(self):
        library = build_special_case_library(SpecialCaseConfig(num_models=30), seed=0)
        assert library.num_models == 30

    def test_shared_blocks_scale_independent(self):
        """The defining property: shared blocks do not grow with |I|."""
        small = build_special_case_library(SpecialCaseConfig(num_models=12), seed=0)
        large = build_special_case_library(SpecialCaseConfig(num_models=60), seed=0)
        # Shared blocks are bounded by the roots' maximal frozen prefixes
        # (40 + 72 + 106), regardless of library size.
        bound = sum(high for _, high in PAPER_FROZEN_RANGES.values())
        assert len(small.shared_block_ids) <= bound
        assert len(large.shared_block_ids) <= bound
        # And the large library is within the same bound, not 5x bigger.
        assert len(large.shared_block_ids) <= len(small.shared_block_ids) * 2

    def test_roots_balanced(self):
        library = build_special_case_library(SpecialCaseConfig(num_models=30), seed=0)
        roots = [library.model(i).root for i in library.model_ids]
        for root in ("resnet18", "resnet34", "resnet50"):
            assert roots.count(root) == 10

    def test_deterministic_given_seed(self):
        a = build_special_case_library(SpecialCaseConfig(num_models=9), seed=5)
        b = build_special_case_library(SpecialCaseConfig(num_models=9), seed=5)
        assert [m.block_ids for m in a.models()] == [
            m.block_ids for m in b.models()
        ]

    def test_seeds_change_frozen_depths(self):
        a = build_special_case_library(SpecialCaseConfig(num_models=9), seed=1)
        b = build_special_case_library(SpecialCaseConfig(num_models=9), seed=2)
        assert [m.block_ids for m in a.models()] != [
            m.block_ids for m in b.models()
        ]

    def test_specific_blocks_exclusive(self):
        library = build_special_case_library(SpecialCaseConfig(num_models=30), seed=0)
        assert library.specific_blocks_are_exclusive()

    def test_substantial_savings(self):
        library = build_special_case_library(SpecialCaseConfig(num_models=30), seed=0)
        # Freezing 70%+ of layers must produce large dedup savings; the
        # exact number depends on where the parameters sit (top layers are
        # biggest in ResNets), so just require a meaningful fraction.
        assert library.sharing_stats().savings_ratio > 0.10

    def test_custom_roots(self):
        config = SpecialCaseConfig(num_models=6, roots=(RESNET18, RESNET34))
        library = build_special_case_library(config, seed=0)
        roots = {library.model(i).root for i in library.model_ids}
        assert roots == {"resnet18", "resnet34"}

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SpecialCaseConfig(num_models=0)
        with pytest.raises(ConfigurationError):
            SpecialCaseConfig(roots=())

    def test_names_follow_taxonomy(self):
        library = build_special_case_library(SpecialCaseConfig(num_models=6), seed=0)
        names = [library.model(i).name for i in library.model_ids]
        assert all("/" in name for name in names)


class TestGeneralCase:
    def test_requested_size(self):
        library = build_general_case_library(GeneralCaseConfig(num_models=30), seed=0)
        assert library.num_models == 30

    def test_shared_blocks_grow_with_scale(self):
        """The defining property: sharing grows with the library size."""
        small = build_general_case_library(GeneralCaseConfig(num_models=20), seed=0)
        large = build_general_case_library(GeneralCaseConfig(num_models=120), seed=0)
        assert len(large.shared_block_ids) > len(small.shared_block_ids)

    def test_first_round_models_share_nothing_with_each_other(self):
        library = build_general_case_library(GeneralCaseConfig(num_models=18), seed=0)
        first_round = [
            library.model(i)
            for i in library.model_ids
            if "round 1" in library.model(i).name
        ]
        assert len(first_round) >= 2
        for a in first_round:
            for b in first_round:
                if a.model_id != b.model_id:
                    assert a.block_set.isdisjoint(b.block_set)

    def test_second_round_children_share_with_parent(self):
        library = build_general_case_library(GeneralCaseConfig(num_models=18), seed=0)
        by_name = {library.model(i).name: library.model(i) for i in library.model_ids}
        parents = {n: m for n, m in by_name.items() if "round 1" in n}
        children = {n: m for n, m in by_name.items() if "round 1" not in n}
        assert children
        for name, child in children.items():
            # Child "root/superclass/class" belongs to parent
            # "root/superclass (round 1)".
            family = name.rsplit("/", 1)[0]
            parent = parents[f"{family} (round 1)"]
            assert child.block_set & parent.block_set

    def test_exclude_first_round(self):
        library = build_general_case_library(
            GeneralCaseConfig(num_models=12, include_first_round=False), seed=0
        )
        assert library.num_models == 12
        names = [library.model(i).name for i in library.model_ids]
        assert all("round 1" not in name for name in names)
        # Siblings still share the parent's bottom blocks.
        assert library.shared_block_ids

    def test_too_many_models_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot produce"):
            build_general_case_library(GeneralCaseConfig(num_models=10_000), seed=0)

    def test_unknown_superclass_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneralCaseConfig(finetune_groups={"fish": ("not a superclass",)})

    def test_deterministic(self):
        a = build_general_case_library(GeneralCaseConfig(num_models=15), seed=3)
        b = build_general_case_library(GeneralCaseConfig(num_models=15), seed=3)
        assert [m.block_ids for m in a.models()] == [
            m.block_ids for m in b.models()
        ]
