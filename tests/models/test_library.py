"""Tests for ModelLibrary: indexes, sharing structure, storage accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LibraryError
from repro.models.blocks import ParameterBlock
from repro.models.library import ModelLibrary
from repro.models.model import Model
from repro.utils.units import MB


def library_from(spec):
    """Build a library from {model_id: {block_id: size}} shorthand."""
    sizes = {}
    models = []
    for model_id, blocks in spec.items():
        for block_id, size in blocks.items():
            if block_id in sizes and sizes[block_id] != size:
                raise AssertionError("inconsistent test spec")
            sizes[block_id] = size
        models.append(Model(model_id, tuple(blocks)))
    return ModelLibrary(
        [ParameterBlock(b, s) for b, s in sizes.items()], models
    )


class TestConstruction:
    def test_duplicate_block_id(self):
        with pytest.raises(LibraryError, match="duplicate block"):
            ModelLibrary(
                [ParameterBlock(0, 1), ParameterBlock(0, 2)],
                [Model(0, (0,))],
            )

    def test_duplicate_model_id(self):
        with pytest.raises(LibraryError, match="duplicate model"):
            ModelLibrary(
                [ParameterBlock(0, 1)],
                [Model(0, (0,)), Model(0, (0,))],
            )

    def test_unknown_block_reference(self):
        with pytest.raises(LibraryError, match="unknown blocks"):
            ModelLibrary([ParameterBlock(0, 1)], [Model(0, (0, 9))])

    def test_empty_models_rejected(self):
        with pytest.raises(LibraryError):
            ModelLibrary([ParameterBlock(0, 1)], [])


class TestSharingStructure:
    def test_shared_vs_specific(self, tiny_library):
        assert tiny_library.shared_block_ids == frozenset({0})
        assert tiny_library.specific_block_ids == frozenset({1, 2, 3, 4})

    def test_models_with_block(self, tiny_library):
        assert tiny_library.models_with_block(0) == frozenset({0, 1})
        assert tiny_library.models_with_block(3) == frozenset({2})

    def test_models_with_unknown_block(self, tiny_library):
        with pytest.raises(LibraryError):
            tiny_library.models_with_block(99)

    def test_shared_blocks_of(self, tiny_library):
        assert tiny_library.shared_blocks_of(0) == frozenset({0})
        assert tiny_library.shared_blocks_of(2) == frozenset()

    def test_specific_blocks_are_exclusive(self, tiny_library):
        assert tiny_library.specific_blocks_are_exclusive()


class TestStorageAccounting:
    def test_model_size(self, tiny_library):
        assert tiny_library.model_size(0) == 15 * MB
        assert tiny_library.model_size(2) == 10 * MB

    def test_deduplicated_vs_independent(self, tiny_library):
        # Models 0 and 1 share block 0 (10 MB): dedup saves exactly that.
        assert tiny_library.independent_size([0, 1]) == 30 * MB
        assert tiny_library.deduplicated_size([0, 1]) == 20 * MB

    def test_dedup_never_exceeds_independent(self, tiny_library):
        for subset in ([0], [1], [2], [0, 1], [0, 2], [0, 1, 2]):
            assert tiny_library.deduplicated_size(
                subset
            ) <= tiny_library.independent_size(subset)

    def test_marginal_size(self, tiny_library):
        # Adding model 1 when block 0 is already cached costs only 5 MB.
        assert tiny_library.marginal_size(1, {0}) == 5 * MB
        assert tiny_library.marginal_size(1, set()) == 15 * MB

    def test_specific_size_of(self, tiny_library):
        assert tiny_library.specific_size_of(0) == 5 * MB
        assert tiny_library.specific_size_of(2) == 10 * MB

    def test_sharing_stats(self, tiny_library):
        stats = tiny_library.sharing_stats()
        assert stats.num_models == 3
        assert stats.num_shared_blocks == 1
        assert stats.total_size_independent == 40 * MB
        assert stats.total_size_deduplicated == 30 * MB
        assert stats.savings_ratio == pytest.approx(0.25)


class TestSubset:
    def test_subset_prunes_blocks(self, tiny_library):
        sub = tiny_library.subset([2])
        assert sub.num_models == 1
        assert set(sub.block_ids) == {3, 4}

    def test_shared_becomes_specific_in_subset(self, tiny_library):
        sub = tiny_library.subset([0, 2])
        # Block 0 was shared between models 0 and 1; with model 1 gone it
        # is specific.
        assert sub.shared_block_ids == frozenset()

    def test_subset_keeps_original_ids(self, tiny_library):
        sub = tiny_library.subset([1, 2])
        assert sub.model_ids == [1, 2]

    def test_empty_subset_rejected(self, tiny_library):
        with pytest.raises(LibraryError):
            tiny_library.subset([])


class TestDunder:
    def test_contains_and_len(self, tiny_library):
        assert 0 in tiny_library
        assert 99 not in tiny_library
        assert len(tiny_library) == 3


@given(
    shared_size=st.integers(1, 100),
    specific_sizes=st.lists(st.integers(1, 100), min_size=2, max_size=6),
)
def test_dedup_savings_equals_shared_size(shared_size, specific_sizes):
    """With one shared block, dedup saves (n-1) copies of it exactly."""
    blocks = [ParameterBlock(0, shared_size)]
    models = []
    for index, size in enumerate(specific_sizes, start=1):
        blocks.append(ParameterBlock(index, size))
        models.append(Model(index - 1, (0, index)))
    library = ModelLibrary(blocks, models)
    ids = library.model_ids
    saved = library.independent_size(ids) - library.deduplicated_size(ids)
    assert saved == (len(specific_sizes) - 1) * shared_size
