"""Tests for the Model type."""

import pytest

from repro.errors import LibraryError
from repro.models.model import Model


class TestModel:
    def test_construction(self):
        model = Model(1, (3, 1, 2), name="m", root="resnet18")
        assert model.num_blocks == 3
        assert model.block_ids == (3, 1, 2)  # order preserved
        assert model.block_set == frozenset({1, 2, 3})

    def test_negative_id_rejected(self):
        with pytest.raises(LibraryError):
            Model(-1, (0,))

    def test_empty_blocks_rejected(self):
        with pytest.raises(LibraryError):
            Model(0, ())

    def test_duplicate_blocks_rejected(self):
        with pytest.raises(LibraryError):
            Model(0, (1, 1))

    def test_contains_block(self):
        model = Model(0, (5, 7))
        assert model.contains_block(5)
        assert not model.contains_block(6)

    def test_str(self):
        assert "2 blocks" in str(Model(0, (1, 2), name="x"))
