"""Tests for Zipf popularity matrices."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.models.popularity import ZipfPopularity, uniform_popularity


class TestZipfPopularity:
    def test_rows_sum_to_one(self):
        matrix = ZipfPopularity().probabilities(5, 20, seed=0)
        assert matrix.shape == (5, 20)
        assert matrix.sum(axis=1) == pytest.approx(np.ones(5))

    def test_zipf_shape_without_permutation(self):
        matrix = ZipfPopularity(
            exponent=1.0, per_user_permutation=False
        ).probabilities(3, 10, seed=0)
        # All users identical.
        assert (matrix[0] == matrix[1]).all()
        # Sorted descending, the ratios follow r^-1.
        top = np.sort(matrix[0])[::-1]
        assert top[0] / top[1] == pytest.approx(2.0)
        assert top[0] / top[4] == pytest.approx(5.0)

    def test_per_user_permutation_differs(self):
        matrix = ZipfPopularity(per_user_permutation=True).probabilities(
            4, 50, seed=0
        )
        assert not (matrix[0] == matrix[1]).all()
        # Every row is the same multiset of probabilities.
        assert np.sort(matrix[0]) == pytest.approx(np.sort(matrix[1]))

    def test_zero_exponent_is_uniform(self):
        matrix = ZipfPopularity(exponent=0.0).probabilities(2, 8, seed=0)
        assert matrix == pytest.approx(np.full((2, 8), 1 / 8))

    def test_reproducible(self):
        a = ZipfPopularity().probabilities(3, 10, seed=42)
        b = ZipfPopularity().probabilities(3, 10, seed=42)
        assert (a == b).all()

    def test_negative_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfPopularity(exponent=-0.1)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfPopularity().probabilities(0, 5)
        with pytest.raises(ConfigurationError):
            ZipfPopularity().probabilities(5, 0)

    @given(
        exponent=st.floats(0.0, 3.0),
        num_models=st.integers(1, 40),
    )
    def test_rows_always_normalised(self, exponent, num_models):
        matrix = ZipfPopularity(exponent=exponent).probabilities(
            2, num_models, seed=0
        )
        assert matrix.sum(axis=1) == pytest.approx(np.ones(2))
        assert (matrix >= 0).all()


class TestUniformPopularity:
    def test_values(self):
        matrix = uniform_popularity(3, 4)
        assert matrix == pytest.approx(np.full((3, 4), 0.25))

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            uniform_popularity(0, 1)


class TestProbabilitiesBatched:
    """The ``rng_scheme="v2"`` batched draw against the per-user one."""

    def test_rows_sum_to_one(self):
        matrix = ZipfPopularity().probabilities_batched(5, 20, seed=0)
        assert matrix.shape == (5, 20)
        assert matrix.sum(axis=1) == pytest.approx(np.ones(5))

    def test_rows_are_permutations_of_base_weights(self):
        """Every row holds exactly the Zipf weights, permuted — the
        batched draw changes the stream layout, not the support."""
        pop = ZipfPopularity(exponent=0.8)
        batched = pop.probabilities_batched(6, 15, seed=3)
        looped = pop.probabilities(6, 15, seed=3)
        for row in range(6):
            assert np.sort(batched[row]) == pytest.approx(np.sort(looped[0]))

    def test_shared_ranking_identical_rows(self):
        matrix = ZipfPopularity(per_user_permutation=False).probabilities_batched(
            4, 10, seed=1
        )
        assert (matrix == matrix[0]).all()

    def test_reproducible(self):
        pop = ZipfPopularity()
        a = pop.probabilities_batched(4, 12, seed=9)
        b = pop.probabilities_batched(4, 12, seed=9)
        assert (a == b).all()

    def test_rows_permuted_independently(self):
        matrix = ZipfPopularity(exponent=1.2).probabilities_batched(20, 30, seed=2)
        assert not (matrix == matrix[0]).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfPopularity().probabilities_batched(0, 5)
        with pytest.raises(ConfigurationError):
            ZipfPopularity().probabilities_batched(5, 0)
