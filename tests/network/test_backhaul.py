"""Tests for the edge-to-edge backhaul."""

import pytest

from repro.errors import ConfigurationError
from repro.network.backhaul import Backhaul
from repro.utils.units import GB, GBPS


class TestBackhaul:
    def test_paper_default_rate(self):
        assert Backhaul().rate(0, 1) == 10 * GBPS

    def test_symmetric_overrides(self):
        backhaul = Backhaul()
        backhaul.set_rate(2, 5, 1 * GBPS)
        assert backhaul.rate(2, 5) == 1 * GBPS
        assert backhaul.rate(5, 2) == 1 * GBPS
        assert backhaul.rate(0, 1) == 10 * GBPS

    def test_transfer_time(self):
        backhaul = Backhaul(default_rate_bps=10 * GBPS)
        # 100 MB over 10 Gbps = 0.08 s.
        assert backhaul.transfer_time_s(100_000_000, 0, 1) == pytest.approx(0.08)

    def test_self_link_rejected(self):
        backhaul = Backhaul()
        with pytest.raises(ConfigurationError):
            backhaul.rate(3, 3)
        with pytest.raises(ConfigurationError):
            backhaul.set_rate(3, 3, 1 * GBPS)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Backhaul(default_rate_bps=0)
        with pytest.raises(ConfigurationError):
            Backhaul(overrides={(0, 1): -1.0})
        with pytest.raises(ConfigurationError):
            Backhaul().set_rate(0, 1, 0.0)
        with pytest.raises(ConfigurationError):
            Backhaul().transfer_time_s(-1, 0, 1)
