"""Tests for the Shannon-rate channel model (paper eq. 1)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.channel import DEFAULT_NOISE_PSD, ChannelModel


class TestDefaults:
    def test_noise_floor_is_minus_174_dbm_per_hz(self):
        assert DEFAULT_NOISE_PSD == pytest.approx(10 ** (-20.4))


class TestExpectedRate:
    def test_equation_1_by_hand(self):
        channel = ChannelModel(antenna_gain=1.0, path_loss_exponent=4.0)
        power, bandwidth, distance = 4.0, 80e6, 100.0
        snr = power * distance**-4 / (DEFAULT_NOISE_PSD * bandwidth)
        expected = bandwidth * math.log2(1 + snr)
        assert channel.expected_rate(power, bandwidth, distance) == pytest.approx(
            expected
        )

    def test_rate_decreases_with_distance(self):
        channel = ChannelModel()
        near = channel.expected_rate(4.0, 80e6, 50.0)
        far = channel.expected_rate(4.0, 80e6, 270.0)
        assert near > far > 0

    def test_rate_increases_with_power(self):
        channel = ChannelModel()
        assert channel.expected_rate(8.0, 80e6, 100.0) > channel.expected_rate(
            4.0, 80e6, 100.0
        )

    def test_vectorised(self):
        channel = ChannelModel()
        rates = channel.expected_rate(4.0, 80e6, np.array([50.0, 100.0, 200.0]))
        assert rates.shape == (3,)
        assert (np.diff(rates) < 0).all()

    def test_min_distance_clamp(self):
        channel = ChannelModel(min_distance=1.0)
        # Below the clamp the rate saturates instead of diverging.
        assert channel.expected_rate(4.0, 80e6, 0.001) == channel.expected_rate(
            4.0, 80e6, 1.0
        )

    def test_realistic_edge_rate_magnitude(self):
        """Paper-setting sanity: hundreds of Mbps to ~Gbps at the edge."""
        channel = ChannelModel()
        rate = channel.expected_rate(4.0, 80e6, 150.0)
        assert 1e8 < rate < 5e9


class TestFadedRate:
    def test_unit_gain_matches_expected(self):
        channel = ChannelModel()
        expected = channel.expected_rate(4.0, 80e6, 100.0)
        faded = channel.faded_rate(4.0, 80e6, 100.0, 1.0)
        assert faded == pytest.approx(expected)

    def test_zero_gain_gives_zero_rate(self):
        channel = ChannelModel()
        assert channel.faded_rate(4.0, 80e6, 100.0, 0.0) == 0.0

    def test_negative_gain_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelModel().faded_rate(4.0, 80e6, 100.0, -0.5)

    def test_rayleigh_gains_are_exp1(self):
        gains = ChannelModel.sample_rayleigh_gains((20000,), seed=0)
        assert gains.mean() == pytest.approx(1.0, abs=0.03)
        assert gains.min() >= 0

    def test_fading_preserves_mean_snr_ordering(self):
        channel = ChannelModel()
        gains = ChannelModel.sample_rayleigh_gains((1000,), seed=1)
        rates = channel.faded_rate(4.0, 80e6, 100.0, gains)
        # Jensen: mean faded rate is below the expected-gain rate.
        assert rates.mean() < channel.expected_rate(4.0, 80e6, 100.0)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ChannelModel(antenna_gain=0)
        with pytest.raises(ConfigurationError):
            ChannelModel(path_loss_exponent=0)
        with pytest.raises(ConfigurationError):
            ChannelModel(noise_psd=0)
        with pytest.raises(ConfigurationError):
            ChannelModel(min_distance=0)

    def test_bad_inputs(self):
        channel = ChannelModel()
        with pytest.raises(ConfigurationError):
            channel.expected_rate(-1.0, 80e6, 100.0)
        with pytest.raises(ConfigurationError):
            channel.expected_rate(4.0, 0.0, 100.0)
