"""Tests for planar geometry helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.geometry import (
    Point,
    clamp_to_square,
    coverage_sets,
    pairwise_distances,
    uniform_points,
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_as_array(self):
        assert (Point(1.5, 2.5).as_array() == np.array([1.5, 2.5])).all()


class TestUniformPoints:
    def test_inside_square(self):
        points = uniform_points(100, 1000.0, seed=0)
        assert len(points) == 100
        for point in points:
            assert 0 <= point.x <= 1000
            assert 0 <= point.y <= 1000

    def test_reproducible(self):
        a = uniform_points(5, 100.0, seed=3)
        b = uniform_points(5, 100.0, seed=3)
        assert a == b

    def test_zero_count(self):
        assert uniform_points(0, 10.0, seed=0) == []

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            uniform_points(-1, 10.0)
        with pytest.raises(ConfigurationError):
            uniform_points(1, 0.0)


class TestPairwiseDistances:
    def test_matrix_values(self):
        sources = [Point(0, 0), Point(0, 10)]
        targets = [Point(3, 4)]
        dist = pairwise_distances(sources, targets)
        assert dist.shape == (2, 1)
        assert dist[0, 0] == pytest.approx(5.0)
        assert dist[1, 0] == pytest.approx(np.hypot(3, 6))

    def test_empty_inputs(self):
        assert pairwise_distances([], [Point(0, 0)]).shape == (0, 1)


class TestCoverageSets:
    def test_coverage_relation(self):
        distances = np.array([[100.0, 300.0], [50.0, 200.0]])
        servers_of_user, users_of_server = coverage_sets(distances, radius=250.0)
        assert servers_of_user == [[0, 1], [1]]
        assert users_of_server == [[0], [0, 1]]

    def test_invalid_radius(self):
        with pytest.raises(ConfigurationError):
            coverage_sets(np.zeros((1, 1)), radius=0.0)


class TestClampToSquare:
    def test_inside_unchanged(self):
        assert clamp_to_square(3.0, 4.0, 10.0) == (3.0, 4.0)

    def test_reflects_over_edge(self):
        x, y = clamp_to_square(12.0, -2.0, 10.0)
        assert x == pytest.approx(8.0)
        assert y == pytest.approx(2.0)

    def test_always_inside(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            x, y = clamp_to_square(
                float(rng.uniform(-50, 50)), float(rng.uniform(-50, 50)), 10.0
            )
            assert 0 <= x <= 10
            assert 0 <= y <= 10
