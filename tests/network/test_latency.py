"""Tests for E2E latency (eqs. 4-5) and the feasibility indicator I1."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.backhaul import Backhaul
from repro.network.channel import ChannelModel
from repro.network.geometry import Point
from repro.network.latency import LatencyModel
from repro.network.servers import EdgeServer
from repro.network.topology import NetworkTopology
from repro.network.users import User
from repro.utils.units import GBPS, MB


def build(server_positions, user_positions, deadlines, inference, backhaul=None):
    num_models = len(deadlines[0])
    servers = [
        EdgeServer(server_id=index, position=pos)
        for index, pos in enumerate(server_positions)
    ]
    users = [
        User(
            user_id=index,
            position=pos,
            deadlines_s=np.array(deadlines[index], dtype=float),
            inference_latency_s=np.array(inference[index], dtype=float),
        )
        for index, pos in enumerate(user_positions)
    ]
    return NetworkTopology(servers, users, backhaul=backhaul or Backhaul())


class TestDirectPath:
    def test_equation_4_by_hand(self):
        """T = D_i / C̄_{m,k} + t_{k,i} for an associated server."""
        topo = build(
            [Point(0, 0)], [Point(100, 0)], [[1.0]], [[0.1]]
        )
        sizes = np.array([50 * MB])
        model = LatencyModel(topo, sizes)
        rate = topo.expected_rates[0, 0]
        expected = 8.0 * 50 * MB / rate + 0.1
        assert model.latency()[0, 0, 0] == pytest.approx(expected)

    def test_feasibility_threshold(self):
        topo = build([Point(0, 0)], [Point(100, 0)], [[1.0]], [[0.1]])
        model = LatencyModel(topo, np.array([50 * MB]))
        latency = model.latency()[0, 0, 0]
        feasible = model.feasibility()[0, 0, 0]
        assert feasible == (latency <= 1.0)

    def test_larger_models_slower(self):
        topo = build(
            [Point(0, 0)], [Point(100, 0)], [[1.0, 1.0]], [[0.1, 0.1]]
        )
        model = LatencyModel(topo, np.array([10 * MB, 100 * MB]))
        lat = model.latency()
        assert lat[0, 0, 0] < lat[0, 0, 1]


class TestRelayPath:
    def test_equation_5_by_hand(self):
        """Non-associated server relays through the best associated one."""
        # Server 0 covers the user; server 1 is 2 km away (not covering).
        topo = build(
            [Point(0, 0), Point(2000, 0)],
            [Point(100, 0)],
            [[10.0]],
            [[0.1]],
        )
        sizes = np.array([50 * MB])
        model = LatencyModel(topo, sizes)
        rate = topo.expected_rates[0, 0]
        backhaul_time = 8.0 * 50 * MB / (10 * GBPS)
        expected = backhaul_time + 8.0 * 50 * MB / rate + 0.1
        assert model.latency()[1, 0, 0] == pytest.approx(expected)

    def test_relay_slower_than_direct(self):
        topo = build(
            [Point(0, 0), Point(2000, 0)], [Point(100, 0)], [[10.0]], [[0.1]]
        )
        model = LatencyModel(topo, np.array([50 * MB]))
        lat = model.latency()
        assert lat[1, 0, 0] > lat[0, 0, 0]

    def test_relay_picks_best_associated(self):
        # Two associated servers at different distances; relay from the far
        # third server must go through the nearer (faster) one.
        topo = build(
            [Point(0, 0), Point(150, 0), Point(3000, 0)],
            [Point(50, 0)],
            [[10.0]],
            [[0.1]],
        )
        model = LatencyModel(topo, np.array([50 * MB]))
        per_bit = model.per_bit_delivery()
        direct_best = min(per_bit[0, 0], per_bit[1, 0])
        backhaul_per_bit = 1.0 / (10 * GBPS)
        assert per_bit[2, 0] == pytest.approx(direct_best + backhaul_per_bit)

    def test_uncovered_user_unreachable(self):
        topo = build([Point(0, 0)], [Point(5000, 0)], [[10.0]], [[0.1]])
        model = LatencyModel(topo, np.array([50 * MB]))
        assert np.isinf(model.latency()[0, 0, 0])
        assert not model.feasibility()[0, 0, 0]


class TestWithFadedRates:
    def test_deep_fade_breaks_feasibility(self):
        topo = build([Point(0, 0)], [Point(100, 0)], [[1.0]], [[0.1]])
        model = LatencyModel(topo, np.array([50 * MB]))
        assert model.feasibility()[0, 0, 0]
        faded = topo.faded_rates(np.full((1, 1), 1e-6))
        assert not model.feasibility(faded)[0, 0, 0]

    def test_rate_shape_checked(self):
        topo = build([Point(0, 0)], [Point(100, 0)], [[1.0]], [[0.1]])
        model = LatencyModel(topo, np.array([50 * MB]))
        with pytest.raises(TopologyError):
            model.per_bit_delivery(np.ones((2, 2)))


class TestValidation:
    def test_bad_sizes(self):
        topo = build([Point(0, 0)], [Point(100, 0)], [[1.0]], [[0.1]])
        with pytest.raises(TopologyError):
            LatencyModel(topo, np.array([1 * MB, 2 * MB]))  # wrong count
        with pytest.raises(TopologyError):
            LatencyModel(topo, np.array([0.0]))
        with pytest.raises(TopologyError):
            LatencyModel(topo, np.ones((1, 1)))


class TestChunkedAndHintedSparse:
    """feasibility_sparse_chunked and the server-order hint are exact."""

    def _scenario_latency(self, seed=3):
        from repro.sim.config import ScenarioConfig
        from repro.sim.scenario import build_scenario

        scenario = build_scenario(
            ScenarioConfig(num_servers=5, num_users=23, num_models=9), seed=seed
        )
        return scenario

    @pytest.mark.parametrize("chunk_size", [1, 4, 23, 22, 64])
    def test_chunked_equals_unchunked(self, chunk_size):
        latency = self._scenario_latency().latency_model
        assert latency.feasibility_sparse_chunked(
            chunk_size
        ) == latency.feasibility_sparse()

    def test_chunked_with_faded_rates(self):
        scenario = self._scenario_latency(seed=5)
        latency = scenario.latency_model
        rng = np.random.default_rng(1)
        rates = scenario.topology.expected_rates * rng.exponential(
            size=scenario.topology.expected_rates.shape
        )
        assert latency.feasibility_sparse_chunked(
            7, rates
        ) == latency.feasibility_sparse(rates)

    def test_chunk_size_must_be_positive(self):
        latency = self._scenario_latency().latency_model
        with pytest.raises(TopologyError, match="chunk_size"):
            latency.feasibility_sparse_chunked(0)

    def test_hint_does_not_change_a_bit(self):
        scenario = self._scenario_latency(seed=7)
        latency = scenario.latency_model
        hint = latency.expected_server_order()
        rng = np.random.default_rng(2)
        for _ in range(5):
            rates = scenario.topology.expected_rates * rng.exponential(
                size=scenario.topology.expected_rates.shape
            )
            assert latency.feasibility_sparse(
                rates, server_order_hint=hint
            ) == latency.feasibility_sparse(rates)

    def test_hint_shape_validated(self):
        latency = self._scenario_latency().latency_model
        bad = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(TopologyError, match="server_order_hint"):
            latency.feasibility_sparse(server_order_hint=bad)

    def test_expected_order_is_cached(self):
        latency = self._scenario_latency().latency_model
        assert latency.expected_server_order() is latency.expected_server_order()
