"""Tests for the §VII-E mobility model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.geometry import Point
from repro.network.mobility import (
    BIKE,
    DEFAULT_CLASSES,
    PEDESTRIAN,
    VEHICLE,
    MobilityClass,
    MobilityModel,
)


class TestPaperParameters:
    def test_speed_ranges(self):
        assert PEDESTRIAN.initial_speed == (0.5, 1.8)
        assert BIKE.initial_speed == (2.0, 8.0)
        assert VEHICLE.initial_speed == (5.5, 20.0)

    def test_acceleration_ranges(self):
        assert PEDESTRIAN.acceleration == (-0.3, 0.3)
        assert BIKE.acceleration == (-1.0, 1.0)
        assert VEHICLE.acceleration == (-3.0, 3.0)

    def test_angular_ranges(self):
        assert PEDESTRIAN.angular_velocity[1] == pytest.approx(np.pi / 4)
        assert BIKE.angular_velocity[1] == pytest.approx(np.pi / 3)
        assert VEHICLE.angular_velocity[1] == pytest.approx(np.pi / 2)


class TestInitialStates:
    def test_round_robin_classes(self):
        model = MobilityModel(1000.0)
        states = model.initial_states([Point(0, 0)] * 6, seed=0)
        names = [s.mobility_class.name for s in states]
        assert names == ["pedestrian", "bike", "vehicle"] * 2

    def test_speeds_in_class_ranges(self):
        model = MobilityModel(1000.0)
        states = model.initial_states([Point(0, 0)] * 30, seed=0)
        for state in states:
            low, high = state.mobility_class.initial_speed
            assert low <= state.speed <= high

    def test_orientation_range(self):
        model = MobilityModel(1000.0)
        states = model.initial_states([Point(0, 0)] * 30, seed=0)
        for state in states:
            assert 0 <= state.orientation <= np.pi


class TestStep:
    def test_positions_stay_in_area(self):
        model = MobilityModel(1000.0, slot_duration_s=5.0)
        states = model.initial_states(
            [Point(500, 500)] * 9, seed=1
        )
        for _ in range(500):
            states = model.step(states, seed=None)
        for state in states:
            assert 0 <= state.x <= 1000
            assert 0 <= state.y <= 1000

    def test_speed_clamped(self):
        model = MobilityModel(1000.0)
        states = model.initial_states([Point(500, 500)] * 9, seed=2)
        for _ in range(200):
            states = model.step(states)
        for state in states:
            assert 0 <= state.speed <= state.mobility_class.max_speed

    def test_users_actually_move(self):
        model = MobilityModel(1000.0, slot_duration_s=5.0)
        states = model.initial_states([Point(500, 500)] * 3, seed=3)
        moved = model.step(states, seed=4)
        for before, after in zip(states, moved):
            assert (before.x, before.y) != (after.x, after.y)


class TestTrajectory:
    def test_shape(self):
        model = MobilityModel(1000.0)
        frames = model.trajectory([Point(1, 1), Point(2, 2)], num_slots=10, seed=0)
        assert len(frames) == 11
        assert len(frames[0]) == 2
        assert frames[0] == [Point(1, 1), Point(2, 2)]

    def test_reproducible(self):
        model = MobilityModel(1000.0)
        a = model.trajectory([Point(1, 1)], num_slots=5, seed=7)
        b = model.trajectory([Point(1, 1)], num_slots=5, seed=7)
        assert a == b

    def test_negative_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            MobilityModel(1000.0).trajectory([Point(0, 0)], num_slots=-1)


class TestValidation:
    def test_bad_model_params(self):
        with pytest.raises(ConfigurationError):
            MobilityModel(0.0)
        with pytest.raises(ConfigurationError):
            MobilityModel(100.0, slot_duration_s=0)
        with pytest.raises(ConfigurationError):
            MobilityModel(100.0, classes=())

    def test_bad_class_params(self):
        with pytest.raises(ConfigurationError):
            MobilityClass("x", (2.0, 1.0), (-1, 1), (-1, 1), 5.0)
        with pytest.raises(ConfigurationError):
            MobilityClass("x", (-1.0, 1.0), (-1, 1), (-1, 1), 5.0)
        with pytest.raises(ConfigurationError):
            MobilityClass("x", (0.5, 1.0), (-1, 1), (-1, 1), 0.0)
