"""Tests for edge servers and resource allocation."""

import pytest

from repro.errors import ConfigurationError
from repro.network.geometry import Point
from repro.network.servers import EdgeServer
from repro.utils.units import GB, MHZ, dbm_to_watts


def make_server(**kwargs) -> EdgeServer:
    defaults = dict(server_id=0, position=Point(0, 0))
    defaults.update(kwargs)
    return EdgeServer(**defaults)


class TestDefaults:
    def test_paper_defaults(self):
        server = make_server()
        assert server.storage_bytes == 1 * GB
        assert server.total_bandwidth_hz == 400 * MHZ
        assert server.total_power_watts == pytest.approx(dbm_to_watts(43.0))
        assert server.coverage_radius_m == 275.0


class TestPerUserShare:
    def test_paper_formula(self):
        """B̄ = B / (p_A |K_m|), P̄ = P / (p_A |K_m|)."""
        server = make_server()
        bandwidth, power = server.per_user_share(10, active_probability=0.5)
        assert bandwidth == pytest.approx(400 * MHZ / 5.0)
        assert power == pytest.approx(dbm_to_watts(43.0) / 5.0)

    def test_more_users_less_share(self):
        server = make_server()
        few, _ = server.per_user_share(5, 0.5)
        many, _ = server.per_user_share(50, 0.5)
        assert few > many

    def test_no_users_full_budget(self):
        server = make_server()
        bandwidth, power = server.per_user_share(0, 0.5)
        assert bandwidth == server.total_bandwidth_hz
        assert power == server.total_power_watts

    def test_validation(self):
        server = make_server()
        with pytest.raises(ConfigurationError):
            server.per_user_share(-1, 0.5)
        with pytest.raises(ConfigurationError):
            server.per_user_share(1, 0.0)
        with pytest.raises(ConfigurationError):
            server.per_user_share(1, 1.5)


class TestValidation:
    def test_bad_fields(self):
        with pytest.raises(ConfigurationError):
            make_server(server_id=-1)
        with pytest.raises(ConfigurationError):
            make_server(storage_bytes=-1)
        with pytest.raises(ConfigurationError):
            make_server(total_bandwidth_hz=0)
        with pytest.raises(ConfigurationError):
            make_server(total_power_watts=0)
        with pytest.raises(ConfigurationError):
            make_server(coverage_radius_m=0)

    def test_zero_storage_allowed(self):
        # A server with no cache is a legal (degenerate) configuration.
        assert make_server(storage_bytes=0).storage_bytes == 0
