"""Tests for NetworkTopology: association, allocation, rates."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.channel import ChannelModel
from repro.network.geometry import Point
from repro.network.servers import EdgeServer
from repro.network.topology import NetworkTopology
from repro.network.users import User
from repro.utils.units import MHZ


def make_topology(
    server_positions,
    user_positions,
    radius=275.0,
    num_models=2,
):
    servers = [
        EdgeServer(server_id=index, position=pos, coverage_radius_m=radius)
        for index, pos in enumerate(server_positions)
    ]
    users = [
        User(
            user_id=index,
            position=pos,
            deadlines_s=np.full(num_models, 1.0),
            inference_latency_s=np.full(num_models, 0.1),
        )
        for index, pos in enumerate(user_positions)
    ]
    return NetworkTopology(servers, users)


class TestAssociation:
    def test_coverage_sets(self):
        topo = make_topology(
            [Point(0, 0), Point(1000, 0)],
            [Point(100, 0), Point(900, 0), Point(500, 0)],
        )
        assert topo.servers_of_user(0) == [0]
        assert topo.servers_of_user(1) == [1]
        assert topo.servers_of_user(2) == []  # covered by nobody
        assert topo.users_of_server(0) == [0]

    def test_overlapping_coverage(self):
        topo = make_topology(
            [Point(0, 0), Point(200, 0)], [Point(100, 0)], radius=275.0
        )
        assert topo.servers_of_user(0) == [0, 1]

    def test_unknown_ids(self):
        topo = make_topology([Point(0, 0)], [Point(1, 1)])
        with pytest.raises(TopologyError):
            topo.servers_of_user(9)
        with pytest.raises(TopologyError):
            topo.users_of_server(9)


class TestAllocation:
    def test_bandwidth_split_among_associated(self):
        topo = make_topology(
            [Point(0, 0)], [Point(50, 0), Point(100, 0)], radius=275.0
        )
        bandwidth = topo.bandwidth_allocation
        # Two associated users, p_A = 0.5: each gets B / 1.
        assert bandwidth[0, 0] == pytest.approx(400 * MHZ / 1.0)
        assert bandwidth[0, 1] == pytest.approx(400 * MHZ / 1.0)

    def test_non_associated_gets_zero(self):
        topo = make_topology([Point(0, 0)], [Point(5000, 0)])
        assert topo.bandwidth_allocation[0, 0] == 0.0
        assert topo.expected_rates[0, 0] == 0.0


class TestRates:
    def test_nearer_user_gets_higher_rate(self):
        topo = make_topology(
            [Point(0, 0)], [Point(50, 0), Point(250, 0)], radius=275.0
        )
        rates = topo.expected_rates
        assert rates[0, 0] > rates[0, 1] > 0

    def test_faded_rates_shape_and_zeroing(self):
        topo = make_topology([Point(0, 0)], [Point(50, 0), Point(5000, 0)])
        gains = np.ones((1, 2))
        faded = topo.faded_rates(gains)
        assert faded[0, 0] == pytest.approx(topo.expected_rates[0, 0])
        assert faded[0, 1] == 0.0

    def test_faded_rates_shape_mismatch(self):
        topo = make_topology([Point(0, 0)], [Point(50, 0)])
        with pytest.raises(TopologyError):
            topo.faded_rates(np.ones((2, 2)))


class TestValidation:
    def test_id_position_mismatch(self):
        servers = [EdgeServer(server_id=1, position=Point(0, 0))]
        users = [
            User(
                user_id=0,
                position=Point(0, 0),
                deadlines_s=np.array([1.0]),
                inference_latency_s=np.array([0.1]),
            )
        ]
        with pytest.raises(TopologyError):
            NetworkTopology(servers, users)

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            make_topology([], [Point(0, 0)])
        with pytest.raises(TopologyError):
            make_topology([Point(0, 0)], [])

    def test_inconsistent_model_counts(self):
        servers = [EdgeServer(server_id=0, position=Point(0, 0))]
        users = [
            User(0, Point(0, 0), np.ones(2), np.full(2, 0.1)),
            User(1, Point(1, 1), np.ones(3), np.full(3, 0.1)),
        ]
        with pytest.raises(TopologyError):
            NetworkTopology(servers, users)


class TestWithUserPositions:
    def test_recomputes_everything(self):
        topo = make_topology([Point(0, 0)], [Point(50, 0)])
        moved = topo.with_user_positions([Point(5000, 0)])
        assert moved.servers_of_user(0) == []
        assert moved.expected_rates[0, 0] == 0.0
        # Original untouched.
        assert topo.servers_of_user(0) == [0]

    def test_wrong_count_rejected(self):
        topo = make_topology([Point(0, 0)], [Point(50, 0)])
        with pytest.raises(TopologyError):
            topo.with_user_positions([Point(0, 0), Point(1, 1)])
