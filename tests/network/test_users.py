"""Tests for the User type."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.geometry import Point
from repro.network.users import User


def make_user(**kwargs) -> User:
    defaults = dict(
        user_id=0,
        position=Point(0, 0),
        deadlines_s=np.array([0.5, 1.0]),
        inference_latency_s=np.array([0.1, 0.2]),
    )
    defaults.update(kwargs)
    return User(**defaults)


class TestUser:
    def test_construction(self):
        user = make_user()
        assert user.num_models == 2
        assert user.active_probability == 0.5

    def test_download_budget(self):
        user = make_user()
        assert user.download_budget_s() == pytest.approx([0.4, 0.8])

    def test_budget_can_be_negative(self):
        user = make_user(
            deadlines_s=np.array([0.5]), inference_latency_s=np.array([0.9])
        )
        assert user.download_budget_s()[0] < 0

    def test_moved_to_preserves_qos(self):
        user = make_user()
        moved = user.moved_to(Point(5, 5))
        assert moved.position == Point(5, 5)
        assert (moved.deadlines_s == user.deadlines_s).all()
        assert moved.user_id == user.user_id

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_user(user_id=-1)
        with pytest.raises(ConfigurationError):
            make_user(deadlines_s=np.array([0.0, 1.0]))
        with pytest.raises(ConfigurationError):
            make_user(inference_latency_s=np.array([-0.1, 0.2]))
        with pytest.raises(ConfigurationError):
            make_user(inference_latency_s=np.array([0.1]))
        with pytest.raises(ConfigurationError):
            make_user(active_probability=0.0)
        with pytest.raises(ConfigurationError):
            make_user(deadlines_s=np.ones((2, 2)), inference_latency_s=np.ones((2, 2)))


class TestUsersFromBatch:
    """The batched constructor behind ``rng_scheme="v2"``."""

    def _batch(self, num_users=3, num_models=4):
        rng = np.random.default_rng(0)
        positions = [Point(float(i), float(i)) for i in range(num_users)]
        deadlines = rng.uniform(0.5, 1.0, size=(num_users, num_models))
        inference = rng.uniform(0.05, 0.15, size=(num_users, num_models))
        return positions, deadlines, inference

    def test_equivalent_to_per_user_constructor(self):
        from repro.network.users import users_from_batch

        positions, deadlines, inference = self._batch()
        batched = users_from_batch(positions, deadlines, inference, 0.5)
        looped = [
            User(
                user_id=index,
                position=positions[index],
                deadlines_s=deadlines[index],
                inference_latency_s=inference[index],
                active_probability=0.5,
            )
            for index in range(len(positions))
        ]
        assert len(batched) == len(looped)
        for a, b in zip(batched, looped):
            assert a.user_id == b.user_id
            assert a.position == b.position
            assert (a.deadlines_s == b.deadlines_s).all()
            assert (a.inference_latency_s == b.inference_latency_s).all()
            assert a.active_probability == b.active_probability

    def test_instances_behave_like_users(self):
        from repro.network.users import users_from_batch

        positions, deadlines, inference = self._batch()
        user = users_from_batch(positions, deadlines, inference)[1]
        assert user.num_models == 4
        assert user.download_budget_s() == pytest.approx(
            deadlines[1] - inference[1]
        )
        moved = user.moved_to(Point(9, 9))
        assert moved.position == Point(9, 9)
        assert (moved.deadlines_s == user.deadlines_s).all()

    def test_validation_matches_post_init(self):
        from repro.network.users import users_from_batch

        positions, deadlines, inference = self._batch()
        with pytest.raises(ConfigurationError):
            users_from_batch(positions, deadlines[0], inference[0])
        with pytest.raises(ConfigurationError):
            users_from_batch(positions, deadlines[:, :2], inference)
        with pytest.raises(ConfigurationError):
            users_from_batch(positions[:-1], deadlines, inference)
        with pytest.raises(ConfigurationError):
            users_from_batch(positions, deadlines * 0.0, inference)
        with pytest.raises(ConfigurationError):
            users_from_batch(positions, deadlines, inference - 1.0)
        with pytest.raises(ConfigurationError):
            users_from_batch(positions, deadlines, inference, 0.0)
