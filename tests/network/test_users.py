"""Tests for the User type."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.geometry import Point
from repro.network.users import User


def make_user(**kwargs) -> User:
    defaults = dict(
        user_id=0,
        position=Point(0, 0),
        deadlines_s=np.array([0.5, 1.0]),
        inference_latency_s=np.array([0.1, 0.2]),
    )
    defaults.update(kwargs)
    return User(**defaults)


class TestUser:
    def test_construction(self):
        user = make_user()
        assert user.num_models == 2
        assert user.active_probability == 0.5

    def test_download_budget(self):
        user = make_user()
        assert user.download_budget_s() == pytest.approx([0.4, 0.8])

    def test_budget_can_be_negative(self):
        user = make_user(
            deadlines_s=np.array([0.5]), inference_latency_s=np.array([0.9])
        )
        assert user.download_budget_s()[0] < 0

    def test_moved_to_preserves_qos(self):
        user = make_user()
        moved = user.moved_to(Point(5, 5))
        assert moved.position == Point(5, 5)
        assert (moved.deadlines_s == user.deadlines_s).all()
        assert moved.user_id == user.user_id

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_user(user_id=-1)
        with pytest.raises(ConfigurationError):
            make_user(deadlines_s=np.array([0.0, 1.0]))
        with pytest.raises(ConfigurationError):
            make_user(inference_latency_s=np.array([-0.1, 0.2]))
        with pytest.raises(ConfigurationError):
            make_user(inference_latency_s=np.array([0.1]))
        with pytest.raises(ConfigurationError):
            make_user(active_probability=0.0)
        with pytest.raises(ConfigurationError):
            make_user(deadlines_s=np.ones((2, 2)), inference_latency_s=np.ones((2, 2)))
