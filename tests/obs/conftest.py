"""Obs suite hygiene: never leak an enabled collector across tests."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def reset_obs():
    obs.disable()
    yield
    obs.disable()
