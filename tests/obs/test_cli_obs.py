"""CLI observability flags: --obs, --trace, --profile PATH."""

from __future__ import annotations

import pstats

import pytest

from repro.cli import main
from repro.obs import validate_chrome_trace

FAST_SWEEP = [
    "sweep",
    "--axis",
    "capacity",
    "--points",
    "4",
    "--topologies",
    "1",
    "--scale",
    "0.05",
]


def run_cli(capsys, *extra):
    assert main(FAST_SWEEP + list(extra)) == 0
    return capsys.readouterr().out


def test_obs_flag_appends_phase_breakdown(capsys):
    output = run_cli(capsys, "--obs")
    assert "phases (seconds are summed across workers):" in output
    assert "task.solve" in output
    assert "solve.gen" in output


def test_without_obs_no_breakdown(capsys):
    output = run_cli(capsys)
    assert "phases" not in output


def test_trace_writes_valid_chrome_trace(capsys, tmp_path):
    path = tmp_path / "trace.json"
    output = run_cli(capsys, "--trace", str(path))
    assert f"chrome trace written to {path}" in output
    info = validate_chrome_trace(str(path))
    assert info["spans"] > 0


def test_trace_composes_with_backend_and_plan(capsys, tmp_path):
    plan_path = tmp_path / "plan.json"
    plan_json = run_cli(capsys, "--dry-run")
    plan_path.write_text(plan_json)
    trace_path = tmp_path / "trace.json"
    assert (
        main(
            [
                "sweep",
                "--plan",
                str(plan_path),
                "--backend",
                "process",
                "--workers",
                "2",
                "--obs",
                "--trace",
                str(trace_path),
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "phases (seconds are summed across workers):" in output
    info = validate_chrome_trace(str(trace_path))
    assert info["spans"] > 0


def test_profile_path_writes_pstats(capsys, tmp_path):
    path = tmp_path / "run.pstats"
    output = run_cli(capsys, "--profile", str(path))
    assert f"pstats profile written to {path}" in output
    assert "cumulative" in output  # the printed top-25 table
    assert "phases (seconds are summed across workers):" in output
    stats = pstats.Stats(str(path))
    assert stats.total_calls > 0


def test_bare_profile_still_works(capsys):
    output = run_cli(capsys, "--profile")
    assert "cumulative" in output
    assert "pstats profile written" not in output


def test_serve_trace_conflicts_with_no_obs(capsys):
    code = main(
        ["serve", "--no-obs", "--trace", "/tmp/never.json", "--users", "8"]
    )
    assert code == 2
    assert "--no-obs" in capsys.readouterr().err
