"""Cross-process telemetry fold: envelopes, queue-wait, chaos safety."""

from __future__ import annotations

import pickle

import pytest

from repro import obs
from repro.api import ExperimentPlan, SolverSpec, SweepSpec
from repro.exec import (
    ChaosPolicy,
    LocalClusterBackend,
    ProcessBackend,
    RemoteClusterBackend,
    SerialBackend,
    execute_plan,
)
from repro.exec.retry import RetryPolicy
from repro.obs.runtime import ObsEnvelope, ObsTask
from repro.sim.serialization import result_set_content_json

FAST_RETRY = RetryPolicy(
    max_attempts=3,
    backoff_base_s=0.0,
    backoff_max_s=0.0,
    jitter=0.0,
    degrade_in_process=True,
)


def _instrumented_double(x):
    # Module-level so it survives pickling, like real grid tasks do.
    obs.count("repro_worker_things_total")
    with obs.span("task.work"):
        return x * 2


def make_plan(**overrides):
    kwargs = dict(
        name="obs exec fold",
        sweep=SweepSpec("capacity", (0.1, 0.2)),
        solvers=(SolverSpec("gen"),),
        base={"num_servers": 3, "num_users": 8, "num_models": 9},
        num_topologies=2,
        seed=0,
    )
    kwargs.update(overrides)
    return ExperimentPlan(**kwargs)


class TestEnvelope:
    def test_wrap_task_is_identity_when_disabled(self):
        def fn(x):
            return x * 2

        assert obs.wrap_task(fn) is fn
        assert obs.absorb(21) == 21

    def test_envelope_roundtrip_folds_metrics_and_spans(self):
        obs.enable(metrics=True, tracing=True)

        wrapped = obs.wrap_task(_instrumented_double)
        assert isinstance(wrapped, ObsTask)
        # Ship it the way every backend does: through pickle.
        wrapped = pickle.loads(pickle.dumps(wrapped))
        envelope = wrapped(21)
        assert isinstance(envelope, ObsEnvelope)
        value = obs.absorb(envelope, submitted_epoch=envelope.started_epoch)
        assert value == 42
        assert obs.registry().counter("repro_worker_things_total").state() == 1
        names = {record[0] for record in obs.tracer().spans}
        assert {"exec.task", "task.work"} <= names
        run_hist = obs.registry().histogram("repro_exec_task_run_seconds")
        assert run_hist.count == 1
        wait_hist = obs.registry().histogram("repro_exec_queue_wait_seconds")
        assert wait_hist.count == 1

    def test_task_exceptions_pass_through_unwrapped(self):
        obs.enable(metrics=True, tracing=True)

        def boom(x):
            raise RuntimeError("kaput")

        wrapped = obs.wrap_task(boom)
        with pytest.raises(RuntimeError, match="kaput"):
            wrapped(1)

    def test_worker_collection_does_not_touch_parent_state(self):
        obs.enable(metrics=True, tracing=True)

        def fn(x):
            obs.count("repro_worker_things_total", 5)
            return x

        envelope = obs.wrap_task(fn)(1)
        # Until absorbed, the worker-side count exists only inside the
        # envelope — the parent registry is untouched.
        assert obs.registry().counter("repro_worker_things_total").state() == 0
        obs.absorb(envelope)
        assert obs.registry().counter("repro_worker_things_total").state() == 5


class TestBackendFold:
    @pytest.mark.parametrize(
        "backend_factory",
        [
            lambda: SerialBackend(),
            lambda: ProcessBackend(workers=2),
            lambda: LocalClusterBackend(workers=2),
            lambda: RemoteClusterBackend(workers=2, heartbeat_interval=0.05),
        ],
        ids=["serial", "process", "cluster", "remote"],
    )
    def test_queue_wait_and_task_spans_fold_in(self, backend_factory):
        obs.enable(metrics=True, tracing=True)
        execute_plan(make_plan(), backend=backend_factory())
        registry = obs.registry()
        tasks = registry.counter("repro_exec_tasks_total").state()
        assert tasks > 0
        assert registry.histogram("repro_exec_task_run_seconds").count == tasks
        assert (
            registry.histogram("repro_exec_queue_wait_seconds").count == tasks
        )
        task_spans = [
            record
            for record in obs.tracer().spans
            if record[0] == "exec.task"
        ]
        assert len(task_spans) == tasks
        # Worker spans ride in under solver phases too.
        names = {record[0] for record in obs.tracer().spans}
        assert "task.solve" in names

    def test_remote_heartbeat_gap_histogram(self):
        obs.enable(metrics=True, tracing=True)
        # A warm run can finish before the first heartbeat fires, so a
        # straggling worker holds the run open past heartbeat_interval.
        execute_plan(
            make_plan(),
            backend=RemoteClusterBackend(
                workers=2,
                heartbeat_interval=0.02,
                chaos=ChaosPolicy(straggle_every=1, straggle_s=0.2),
            ),
        )
        gaps = obs.registry().histogram("repro_exec_heartbeat_gap_seconds")
        assert gaps.count > 0

    def test_killed_workers_cannot_corrupt_the_merged_view(self):
        # A killed worker dies before shipping its envelope; retries make
        # a fresh one. The merged trace must hold exactly one exec.task
        # span per grid task, and content identity must hold.
        obs.disable()
        reference, _ = execute_plan(make_plan(), backend=SerialBackend())
        obs.enable(metrics=True, tracing=True)
        result, report = execute_plan(
            make_plan(),
            backend=RemoteClusterBackend(
                workers=2,
                retry=FAST_RETRY,
                heartbeat_interval=0.05,
                chaos=ChaosPolicy(kill_after=1),
            ),
        )
        assert report.workers_lost >= 1
        assert result_set_content_json(result) == result_set_content_json(
            reference
        )
        tasks = obs.registry().counter("repro_exec_tasks_total").state()
        task_spans = [
            record
            for record in obs.tracer().spans
            if record[0] == "exec.task"
        ]
        assert len(task_spans) == tasks
        instants = {record[0] for record in obs.tracer().instants}
        assert "exec.worker_lost" in instants
