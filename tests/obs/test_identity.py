"""The obs identity contract: telemetry never touches a result byte.

Runs the same plan with observability off and fully on (metrics +
tracing) over every backend and asserts the deterministic result
content, the artifact-store hashes and the hit-ratio series are
``==``-identical — the same bar the chaos suite holds fault tolerance
to.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.api import ExperimentPlan, SolverSpec, SweepSpec
from repro.exec import (
    ArtifactStore,
    LocalClusterBackend,
    ProcessBackend,
    RemoteClusterBackend,
    SerialBackend,
    execute_plan,
    plan_cache_key,
)
from repro.sim.serialization import result_set_content_json


def make_plan(**overrides):
    kwargs = dict(
        name="obs identity",
        sweep=SweepSpec("capacity", (0.1, 0.2)),
        solvers=(SolverSpec("gen"), SolverSpec("independent")),
        base={"num_servers": 3, "num_users": 8, "num_models": 9},
        num_topologies=2,
        seed=0,
    )
    kwargs.update(overrides)
    return ExperimentPlan(**kwargs)


BACKENDS = {
    "serial": lambda: SerialBackend(),
    "process": lambda: ProcessBackend(workers=2),
    "cluster": lambda: LocalClusterBackend(workers=2),
    "remote": lambda: RemoteClusterBackend(workers=2, heartbeat_interval=0.05),
}


@pytest.fixture(scope="module")
def dark_reference():
    obs.disable()
    result, _ = execute_plan(make_plan(), backend=SerialBackend())
    return result


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_observed_run_is_content_identical(backend, dark_reference):
    obs.enable(metrics=True, tracing=True)
    result, _ = execute_plan(make_plan(), backend=BACKENDS[backend]())
    assert result_set_content_json(result) == result_set_content_json(
        dark_reference
    )
    # The series values themselves — not just the canonical JSON — are
    # == across the obs boundary.
    for algo, series in dark_reference.series.items():
        observed = result.series[algo]
        assert observed.means.tolist() == series.means.tolist()
        assert observed.stds.tolist() == series.stds.tolist()
    # And the run actually collected telemetry (the test is vacuous if
    # instrumentation silently stayed off).
    assert len(obs.tracer()) > 0


def test_obs_does_not_perturb_store_hashes(tmp_path, dark_reference):
    plan = make_plan()
    key_dark = plan_cache_key(plan)
    obs.enable(metrics=True, tracing=True)
    assert plan_cache_key(plan) == key_dark  # cache key ignores obs
    store = ArtifactStore(tmp_path / "observed")
    execute_plan(plan, backend=SerialBackend(), store=store)
    obs.disable()
    # A dark run must *hit* the observed run's cache: same key, and the
    # stored bytes deserialise to the identical content.
    warm, report = execute_plan(plan, backend=SerialBackend(), store=store)
    assert report.cache == "hit"
    assert result_set_content_json(warm) == result_set_content_json(
        dark_reference
    )


def test_metrics_only_and_tracing_only_are_identical_too(dark_reference):
    for metrics, tracing in ((True, False), (False, True)):
        obs.enable(metrics=metrics, tracing=tracing)
        result, _ = execute_plan(make_plan(), backend=SerialBackend())
        assert result_set_content_json(result) == result_set_content_json(
            dark_reference
        )
        obs.disable()
