"""Metrics primitives: counters, gauges, histograms, fold, exposition."""

from __future__ import annotations

import pytest

from repro.obs import LATENCY_BUCKETS, MetricsRegistry, parse_prometheus


class TestCounter:
    def test_inc_and_state(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_widgets_total")
        counter.inc()
        counter.inc(4)
        assert counter.state() == 5

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("repro_widgets_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_labels_address_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("repro_events_total", mode="replay").inc(3)
        registry.counter("repro_events_total", mode="full").inc(1)
        assert registry.counter("repro_events_total", mode="replay").state() == 3
        assert registry.counter("repro_events_total", mode="full").state() == 1

    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_widgets_total")
        b = registry.counter("repro_widgets_total")
        assert a is b


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_depth")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.state() == 12.0

    def test_merge_keeps_merged_in_reading(self):
        parent = MetricsRegistry()
        parent.gauge("repro_depth").set(1.0)
        worker = MetricsRegistry()
        worker.gauge("repro_depth").set(7.0)
        parent.merge(worker)
        assert parent.gauge("repro_depth").state() == 7.0


class TestHistogram:
    def test_observe_buckets_sum_count(self):
        hist = MetricsRegistry().histogram(
            "repro_lat_seconds", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]  # (<=0.1, <=1.0, +Inf)
        assert hist.count == 3
        assert hist.sum == pytest.approx(5.55)

    def test_boundary_lands_in_le_bucket(self):
        # Prometheus `le` semantics: a sample equal to a bound belongs
        # to that bound's bucket.
        hist = MetricsRegistry().histogram(
            "repro_lat_seconds", buckets=(0.1, 1.0)
        )
        hist.observe(0.1)
        assert hist.counts == [1, 0, 0]

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            MetricsRegistry().histogram("repro_bad", buckets=(1.0, 0.5))

    def test_rejects_bucket_schema_change(self):
        registry = MetricsRegistry()
        registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="bucket schemas are fixed"):
            registry.histogram("repro_lat_seconds", buckets=(0.2, 2.0))

    def test_merge_rejects_mismatched_schemas(self):
        a = MetricsRegistry().histogram("repro_lat_seconds", buckets=(0.1,))
        b = MetricsRegistry().histogram("repro_lat_seconds", buckets=(0.2,))
        with pytest.raises(ValueError, match="mismatched bucket"):
            a.merge_state(b.state())

    def test_default_buckets_are_latency_shaped(self):
        hist = MetricsRegistry().histogram("repro_lat_seconds")
        assert hist.buckets == LATENCY_BUCKETS


class TestRegistryFold:
    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_thing")

    def test_snapshot_roundtrip_adds(self):
        parent = MetricsRegistry()
        parent.counter("repro_tasks_total").inc(2)
        parent.histogram("repro_lat_seconds", buckets=(1.0,)).observe(0.5)
        worker = MetricsRegistry()
        worker.counter("repro_tasks_total").inc(3)
        worker.counter("repro_retries_total").inc()
        worker.histogram("repro_lat_seconds", buckets=(1.0,)).observe(2.0)
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("repro_tasks_total").state() == 5
        assert parent.counter("repro_retries_total").state() == 1
        hist = parent.histogram("repro_lat_seconds", buckets=(1.0,))
        assert hist.counts == [1, 1]
        assert hist.count == 2

    def test_fold_order_does_not_matter(self):
        def worker(n):
            registry = MetricsRegistry()
            registry.counter("repro_tasks_total").inc(n)
            # Dyadic values: the folded sum is exact in either order.
            registry.histogram("repro_lat_seconds", buckets=(1.0,)).observe(
                n * 0.5
            )
            return registry.snapshot()

        snapshots = [worker(n) for n in (1, 2, 3)]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in snapshots:
            forward.merge_snapshot(snap)
        for snap in reversed(snapshots):
            backward.merge_snapshot(snap)
        assert forward.to_prometheus() == backward.to_prometheus()


class TestExposition:
    def test_text_format_parses_back(self):
        registry = MetricsRegistry()
        registry.counter("repro_tasks_total", backend="remote").inc(7)
        registry.gauge("repro_hit_ratio").set(0.75)
        registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0)).observe(
            0.05
        )
        text = registry.to_prometheus()
        assert "# TYPE repro_tasks_total counter" in text
        parsed = parse_prometheus(text)
        assert parsed["repro_tasks_total"]['{backend="remote"}'] == 7
        assert parsed["repro_hit_ratio"][""] == 0.75

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        lines = registry.to_prometheus().splitlines()
        buckets = [line for line in lines if "_bucket" in line]
        assert buckets == [
            'repro_lat_seconds_bucket{le="0.1"} 1',
            'repro_lat_seconds_bucket{le="1"} 2',
            'repro_lat_seconds_bucket{le="+Inf"} 3',
        ]
        assert "repro_lat_seconds_count 3" in lines

    def test_parse_rejects_malformed_line(self):
        with pytest.raises(ValueError):
            parse_prometheus("repro_bad_metric this-is-not-a-number\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""
