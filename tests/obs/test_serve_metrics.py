"""The serve layer's observability surface: /metrics, counters, spans."""

from __future__ import annotations

import threading
import urllib.request

import pytest

from repro import obs
from repro.serve import PlacementService, ResolvePolicy, serve_http
from repro.serve.events import Event
from repro.serve.http import metrics_exposition
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario
from repro.utils.units import GB


@pytest.fixture(scope="module")
def scenario():
    config = ScenarioConfig(
        num_servers=3,
        num_users=12,
        num_models=9,
        requests_per_user=4,
        storage_bytes=int(0.09 * GB),
    )
    return build_scenario(config, seed=3)


def run_server(service):
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def fetch(server, path):
    url = f"http://127.0.0.1:{server.port}{path}"
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers, response.read().decode()


class TestExposition:
    def test_service_metrics_without_obs(self, scenario):
        service = PlacementService(scenario)
        service.process(Event(kind="user_depart", user=3))
        parsed = obs.parse_prometheus(metrics_exposition(service))
        resolves = parsed["repro_serve_resolves_total"]
        assert sum(resolves.values()) == 1
        assert parsed["repro_serve_events_processed_total"][""] == 1
        assert parsed["repro_serve_hit_ratio"][""] == service.hit_ratio
        # Obs disabled: no histogram families leak in.
        assert "repro_serve_event_seconds_bucket" not in parsed

    def test_obs_registry_appended_when_enabled(self, scenario):
        obs.enable(metrics=True, tracing=False)
        service = PlacementService(scenario)
        service.process(Event(kind="user_depart", user=3))
        (mode,) = [m for m, n in service.counters.items() if n == 1]
        key = f'{{mode="{mode}"}}'
        parsed = obs.parse_prometheus(metrics_exposition(service))
        assert parsed["repro_serve_event_seconds_count"][key] == 1
        assert parsed["repro_serve_events_total"][key] == 1

    def test_counters_survive_full_every_resolves(self, scenario):
        # Reset semantics: a policy-mandated full solve increments the
        # counters like any other event — it never zeroes them.
        service = PlacementService(
            scenario, policy=ResolvePolicy(full_every=2)
        )
        for user in range(3):
            service.process(Event(kind="user_depart", user=user))
            service.process(Event(kind="user_arrive", user=user))
        stats = service.stats()
        assert stats["events_processed"] == 6
        assert stats["full"] >= 3  # every 2nd event forced full
        modes = ("replay", "fallback", "full", "noop")
        assert sum(stats[mode] for mode in modes) == 6
        parsed = obs.parse_prometheus(metrics_exposition(service))
        resolves = parsed["repro_serve_resolves_total"]
        assert sum(resolves.values()) == 6


class TestHTTP:
    def test_metrics_endpoint_plaintext_and_parseable(self, scenario):
        obs.enable(metrics=True, tracing=False)
        service = PlacementService(scenario)
        server, thread = run_server(service)
        try:
            status, headers, body = fetch(server, "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            parsed = obs.parse_prometheus(body)
            assert "repro_serve_resolves_total" in parsed
            # Exercise a route, then see its latency histogram appear.
            fetch(server, "/route?user=1&model=2")
            _, _, body = fetch(server, "/metrics")
            parsed = obs.parse_prometheus(body)
            assert parsed["repro_serve_route_seconds_count"][""] == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_metrics_matches_status(self, scenario):
        service = PlacementService(scenario)
        service.process(Event(kind="user_depart", user=1))
        server, thread = run_server(service)
        try:
            _, _, body = fetch(server, "/metrics")
            parsed = obs.parse_prometheus(body)
            import json

            status_url = f"http://127.0.0.1:{server.port}/status"
            with urllib.request.urlopen(status_url, timeout=10) as response:
                status_payload = json.loads(response.read().decode())
            for mode, value in status_payload["counters"].items():
                key = f'{{mode="{mode}"}}'
                assert parsed["repro_serve_resolves_total"][key] == value
            assert (
                parsed["repro_serve_events_processed_total"][""]
                == status_payload["events_processed"]
            )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestServeSpans:
    def test_event_spans_annotate_mode(self, scenario):
        obs.enable(metrics=True, tracing=True)
        # full_every=1 pins the resolve mode so the span args are exact.
        service = PlacementService(
            scenario, policy=ResolvePolicy(full_every=1)
        )
        service.process(Event(kind="user_depart", user=3))
        spans = {record[0]: record for record in obs.tracer().spans}
        assert spans["serve.event"][6]["mode"] == "full"
        assert spans["serve.event"][6]["kind"] == "user_depart"
        assert "serve.refresh" in spans
        assert "serve.full_solve" in spans
