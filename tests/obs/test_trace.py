"""Tracing: spans, the runtime switch, Chrome export, the validator."""

from __future__ import annotations

import pickle

import pytest

from repro import obs
from repro.obs import Tracer, chrome_trace, validate_chrome_trace
from repro.obs.trace import NOOP_SPAN


class TestRuntimeSwitch:
    def test_disabled_span_is_the_shared_noop(self):
        assert obs.span("anything") is NOOP_SPAN
        with obs.span("anything") as handle:
            handle["key"] = "ignored"  # must not raise
        assert len(obs.tracer()) == 0

    def test_disabled_metrics_record_nothing(self):
        obs.count("repro_things_total")
        obs.observe("repro_lat_seconds", 0.5)
        assert len(obs.registry()) == 0

    def test_enable_collects_and_disable_drops(self):
        obs.enable()
        with obs.span("phase.one"):
            pass
        obs.count("repro_things_total")
        assert len(obs.tracer()) == 1
        assert len(obs.registry()) == 1
        obs.disable()
        assert len(obs.tracer()) == 0
        assert len(obs.registry()) == 0

    def test_nesting_depth_recorded(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = {record[0]: record for record in obs.tracer().spans}
        assert spans["outer"][5] == 0
        assert spans["inner"][5] == 1
        # Inner closed first and nests within outer's interval.
        outer, inner = spans["outer"], spans["inner"]
        assert outer[1] <= inner[1]
        assert inner[1] + inner[2] <= outer[1] + outer[2] or inner[2] == 1

    def test_annotation_and_args(self):
        obs.enable()
        with obs.span("phase", engine="sparse") as handle:
            handle["steps"] = 12
        (record,) = obs.tracer().spans
        assert record[6] == {"engine": "sparse", "steps": 12}

    def test_traced_decorator(self):
        obs.enable()

        @obs.traced("mod.fn")
        def fn(x):
            return x + 1

        assert fn(1) == 2
        assert obs.tracer().spans[0][0] == "mod.fn"

    def test_instants(self):
        obs.enable()
        obs.instant("exec.retry", task=3)
        (record,) = obs.tracer().instants
        assert record[0] == "exec.retry"
        assert record[4] == {"task": 3}

    def test_phase_totals_sums_per_name(self):
        obs.enable()
        for _ in range(3):
            with obs.span("phase.a"):
                pass
        totals = obs.phase_totals()
        assert totals["phase.a"]["count"] == 3
        assert totals["phase.a"]["seconds"] > 0


class TestTracerBounds:
    def test_max_events_drops_not_grows(self):
        tracer = Tracer(max_events=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_absorb_respects_budget_and_counts_drops(self):
        parent = Tracer(max_events=3)
        with parent.span("parent"):
            pass
        worker = Tracer()
        for index in range(4):
            with worker.span(f"w{index}"):
                pass
        parent.absorb(worker.snapshot())
        assert len(parent.spans) == 3
        assert parent.dropped == 2

    def test_snapshot_is_picklable(self):
        tracer = Tracer()
        with tracer.span("phase", {"k": "v"}):
            tracer.instant("tick")
        restored = pickle.loads(pickle.dumps(tracer.snapshot()))
        assert restored["spans"][0][0] == "phase"
        assert restored["instants"][0][0] == "tick"


class TestChromeExport:
    def test_roundtrip_validates(self, tmp_path):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            obs.instant("tick")
        with obs.span("second"):
            pass
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(obs.tracer(), str(path))
        info = validate_chrome_trace(str(path))
        assert info == {"spans": 3, "instants": 1, "tracks": 1}

    def test_microsecond_collapsed_spans_stay_balanced(self):
        # Sibling spans whose start/end collapse onto the same tick are
        # the hard case for B/E pairing: the exporter must nest or
        # serialise them, never cross them.
        tracer = Tracer()
        tracer.spans = [
            ("a", 100, 1, 1, 1, 0, None),
            ("b", 100, 1, 1, 1, 0, None),
            ("c", 100, 5, 1, 1, 0, None),
            ("d", 103, 2, 1, 1, 1, None),
        ]
        validate_chrome_trace(chrome_trace(tracer))

    def test_absorbed_worker_spans_render_as_own_track(self):
        parent = Tracer()
        with parent.span("exec.run"):
            pass
        worker = Tracer()
        with worker.span("exec.task"):
            pass
        worker.pid = parent.pid + 1  # simulate another process
        worker.spans = [
            (name, start, dur, worker.pid, tid, depth, args)
            for name, start, dur, _pid, tid, depth, args in worker.spans
        ]
        parent.absorb(worker.snapshot())
        payload = chrome_trace(parent)
        info = validate_chrome_trace(payload)
        assert info["spans"] == 2
        assert info["tracks"] == 2
        names = {
            event["args"]["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "M"
        }
        assert names == {"repro parent", f"worker {worker.pid}"}

    def test_validator_rejects_crossing_pairs(self):
        events = [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 0},
            {"name": "b", "ph": "B", "pid": 1, "tid": 1, "ts": 1},
            {"name": "a", "ph": "E", "pid": 1, "tid": 1, "ts": 2},
            {"name": "b", "ph": "E", "pid": 1, "tid": 1, "ts": 3},
        ]
        with pytest.raises(ValueError, match="crosses open span"):
            validate_chrome_trace(events)

    def test_validator_rejects_backwards_ts(self):
        events = [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 5},
            {"name": "a", "ph": "E", "pid": 1, "tid": 1, "ts": 4},
        ]
        with pytest.raises(ValueError, match="goes backwards"):
            validate_chrome_trace(events)

    def test_validator_rejects_unbalanced(self):
        events = [{"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 0}]
        with pytest.raises(ValueError, match="unbalanced"):
            validate_chrome_trace(events)
