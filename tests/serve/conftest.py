"""Fixtures for the serving-layer tests.

The scenarios are session-scoped and read-only: every
:class:`~repro.serve.service.PlacementService` (and the from-scratch
reference path) takes private copies of the demand/capacity arrays, so
sharing one built scenario across tests is safe.
"""

from __future__ import annotations

import pytest

from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario
from repro.utils.units import GB


@pytest.fixture(scope="session")
def serve_scenario():
    """Small, tight-storage scenario where placements are non-trivial."""
    config = ScenarioConfig(
        num_servers=6,
        num_users=40,
        num_models=24,
        requests_per_user=8,
        storage_bytes=int(0.12 * GB),
    )
    return build_scenario(config, seed=7)


@pytest.fixture(scope="session")
def micro_scenario():
    """Very small scenario for HTTP/CLI smoke tests (fast solves)."""
    config = ScenarioConfig(
        num_servers=3,
        num_users=12,
        num_models=9,
        requests_per_user=4,
        storage_bytes=int(0.09 * GB),
    )
    return build_scenario(config, seed=3)
