"""`python -m repro serve`: the HTTP endpoint as a real subprocess."""

from __future__ import annotations

import json
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")


def start_server(extra_args, tmp_env_cwd):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=tmp_env_cwd,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    port = None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("port="):
            port = int(line.strip().split("=", 1)[1])
            break
        if not line and process.poll() is not None:
            break
    if port is None:
        stderr = process.stderr.read() if process.poll() is not None else ""
        process.kill()
        raise AssertionError(f"server never reported its port: {stderr}")
    return process, port


def fetch(port, path):
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def post(port, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


SHAPE_ARGS = [
    "--servers", "3", "--users", "12", "--models", "9",
    "--requests-per-user", "4", "--storage-gb", "0.09", "--seed", "3",
]


class TestServeCommand:
    def test_serve_with_shape_flags(self, tmp_path):
        process, port = start_server(SHAPE_ARGS, tmp_path)
        try:
            status = fetch(port, "/status")
            assert status["num_servers"] == 3
            assert status["num_users"] == 12
            assert status["engine"] == "sparse"  # CLI default
            reply = post(
                port,
                "/events",
                {"events": [{"kind": "user_depart", "user": 2}]},
            )
            assert reply["processed"] == 1
            assert fetch(port, "/status")["events_processed"] == 1
            route = fetch(port, "/route?user=0&model=0")
            assert set(route) == {"user", "model", "server", "hit"}
        finally:
            process.terminate()
            process.wait(timeout=10)

    def test_serve_with_plan_file(self, tmp_path):
        from repro.api import ExperimentPlan, SolverSpec, SweepSpec, plan_to_json

        plan = ExperimentPlan(
            name="serve plan",
            solvers=(SolverSpec("gen"),),
            sweep=SweepSpec("users", (12,)),
            base={
                "num_servers": 3,
                "num_users": 12,
                "num_models": 9,
                "requests_per_user": 4,
                "storage_bytes": 90_000_000,
            },
            seed=3,
        )
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan_to_json(plan))
        process, port = start_server(
            ["--plan", str(plan_path), "--engine", "dense"], tmp_path
        )
        try:
            status = fetch(port, "/status")
            assert status["num_users"] == 12
            assert status["num_models"] == 9
            assert status["engine"] == "dense"
        finally:
            process.terminate()
            process.wait(timeout=10)

    def test_serve_rejects_bad_plan_path(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve",
                "--plan", str(tmp_path / "missing.json"),
            ],
            capture_output=True,
            text=True,
            cwd=tmp_path,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            timeout=60,
        )
        assert result.returncode == 2
        assert "cannot read --plan file" in result.stderr

    def test_flags_path_matches_plan_path(self, tmp_path):
        """Same scenario via flags and via plan → identical hit ratio."""
        process, port = start_server(SHAPE_ARGS, tmp_path)
        try:
            flags_ratio = fetch(port, "/status")["hit_ratio"]
        finally:
            process.terminate()
            process.wait(timeout=10)

        from repro.api import ExperimentPlan, SolverSpec, SweepSpec, plan_to_json
        from repro.utils.units import GB

        plan = ExperimentPlan(
            name="serve plan",
            solvers=(SolverSpec("gen"),),
            sweep=SweepSpec("users", (12,)),
            base={
                "num_servers": 3,
                "num_users": 12,
                "num_models": 9,
                "requests_per_user": 4,
                "storage_bytes": int(0.09 * GB),
            },
            seed=3,
        )
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan_to_json(plan))
        process, port = start_server(["--plan", str(plan_path)], tmp_path)
        try:
            assert fetch(port, "/status")["hit_ratio"] == flags_ratio
        finally:
            process.terminate()
            process.wait(timeout=10)
