"""The pinned serve invariant: patched == from-scratch, bit for bit.

After any seeded event sequence, the service's placement and objective
must be ``==``-identical (no tolerance) to solving the mutated scenario
from scratch — across solvers, engines, and resolve policies, including
capacity changes, and on both the patch and the full-resolve policy
paths. The grid below is the acceptance gate from the PR issue.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    Event,
    PlacementService,
    ResolvePolicy,
    generate_event_trace,
    resolve_from_scratch,
)

SOLVERS = ("gen", "independent")
ENGINES = ("dense", "sparse")
POLICIES = {
    "auto": ResolvePolicy(),
    "patch": ResolvePolicy(mode="patch"),
    "full": ResolvePolicy(mode="full"),
    "cadence": ResolvePolicy(full_every=5),
}


def assert_service_matches_scratch(scenario, trace, solver, engine, policy):
    """Run the trace through the service and the stateless reference."""
    service = PlacementService(
        scenario, solver=solver, engine=engine, policy=policy
    )
    results = service.process_trace(trace)
    records = resolve_from_scratch(scenario, trace, solver=solver, engine=engine)
    assert len(results) == len(records)
    for step, (result, record) in enumerate(zip(results, records)):
        assert result.hit_ratio == record.hit_ratio, (
            f"hit ratio diverged at event {step} ({trace[step].kind}): "
            f"served {result.hit_ratio!r} != scratch {record.hit_ratio!r} "
            f"[solver={solver} engine={engine}]"
        )
    assert np.array_equal(
        service.state.placement.matrix, records[-1].placement.matrix
    ), f"final placement diverged [solver={solver} engine={engine}]"
    return service


class TestPinnedEquivalence:
    @pytest.mark.parametrize("solver", SOLVERS)
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_mixed_trace_grid(self, serve_scenario, solver, engine, policy_name):
        trace = generate_event_trace(serve_scenario, 30, seed=17)
        service = assert_service_matches_scratch(
            serve_scenario, trace, solver, engine, POLICIES[policy_name]
        )
        if policy_name in ("auto", "patch"):
            # The suite must actually exercise the replay path, not just
            # prove equality through constant full solves.
            assert service.counters["replay"] > 0

    @pytest.mark.parametrize("seed", [1, 23, 61])
    def test_multiple_seeds_sparse_gen(self, serve_scenario, seed):
        trace = generate_event_trace(serve_scenario, 25, seed=seed)
        assert_service_matches_scratch(
            serve_scenario, trace, "gen", "sparse", ResolvePolicy()
        )

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_capacity_heavy_trace(self, serve_scenario, solver):
        """Capacity steps dominate: the full-resolve path under pressure."""
        trace = generate_event_trace(
            serve_scenario, 20, seed=37, weights=(0.1, 0.1, 0.7, 0.1)
        )
        assert sum(e.kind == "capacity_change" for e in trace) >= 10
        assert_service_matches_scratch(
            serve_scenario, trace, solver, "sparse", ResolvePolicy()
        )

    def test_churn_only_trace_dense_gen(self, serve_scenario):
        """Arrivals/departures only: the patch path's bread and butter."""
        trace = generate_event_trace(
            serve_scenario, 30, seed=41, weights=(0.5, 0.5, 0.0, 0.0)
        )
        service = assert_service_matches_scratch(
            serve_scenario, trace, "gen", "dense", ResolvePolicy(mode="patch")
        )
        assert service.counters["full"] == 0  # no capacity events drawn

    def test_popularity_swings(self, serve_scenario):
        """Hand-built extreme popularity swings (factors far from 1)."""
        events = [
            Event(kind="popularity_update", model=0, factor=5.0),
            Event(kind="popularity_update", model=3, factor=0.01),
            Event(kind="user_depart", user=2),
            Event(kind="popularity_update", model=0, factor=0.2),
            Event(kind="user_arrive", user=2),
            Event(kind="popularity_update", model=7, factor=3.0),
        ]
        for engine in ENGINES:
            assert_service_matches_scratch(
                serve_scenario, events, "gen", engine, ResolvePolicy()
            )

    def test_capacity_then_churn_interleaved(self, serve_scenario):
        """Capacity shifts between churn events: patches must stay exact
        against the post-shift remaining-capacity state."""
        original = np.asarray(serve_scenario.instance.capacities, dtype=np.int64)
        events = [
            Event(kind="user_depart", user=1),
            Event(
                kind="capacity_change",
                server=0,
                capacity_bytes=int(original[0] * 0.6),
            ),
            Event(kind="user_depart", user=9),
            Event(kind="user_arrive", user=1),
            Event(
                kind="capacity_change",
                server=2,
                capacity_bytes=int(original[2] * 1.4),
            ),
            Event(kind="user_arrive", user=9),
            Event(kind="user_depart", user=30),
        ]
        for solver in SOLVERS:
            assert_service_matches_scratch(
                serve_scenario, events, solver, "sparse", ResolvePolicy()
            )
