"""Event model: validation, JSON round-trips, the seeded generator."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.placement import PlacementInstance
from repro.errors import ServeError
from repro.serve import Event, EventTrace, apply_event, generate_event_trace
from repro.serve.events import TRACE_FORMAT


def carrier_for(scenario) -> PlacementInstance:
    source = scenario.instance
    return PlacementInstance(
        library=scenario.library,
        demand=scenario.demand.copy(),
        feasible=source.sparse_feasible,
        capacities=np.asarray(source.capacities, dtype=np.int64).copy(),
    )


class TestEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ServeError, match="unknown event kind"):
            Event(kind="user_teleport", user=0)

    @pytest.mark.parametrize(
        "kind,kwargs",
        [
            ("user_arrive", {}),
            ("user_depart", {}),
            ("capacity_change", {"server": 0}),
            ("capacity_change", {"capacity_bytes": 10}),
            ("popularity_update", {"model": 1}),
            ("popularity_update", {"factor": 2.0}),
        ],
    )
    def test_missing_required_field_rejected(self, kind, kwargs):
        with pytest.raises(ServeError, match="requires"):
            Event(kind=kind, **kwargs)

    def test_dict_round_trip(self):
        event = Event(kind="capacity_change", server=2, capacity_bytes=123456)
        payload = event.to_dict()
        assert payload == {
            "kind": "capacity_change",
            "server": 2,
            "capacity_bytes": 123456,
        }
        assert Event.from_dict(payload) == event

    def test_from_dict_tolerates_extra_keys_and_coerces(self):
        event = Event.from_dict(
            {"kind": "popularity_update", "model": "3", "factor": "1.5", "x": 1}
        )
        assert event == Event(kind="popularity_update", model=3, factor=1.5)

    def test_from_dict_rejects_non_dict_and_missing(self):
        with pytest.raises(ServeError):
            Event.from_dict(["user_depart"])
        with pytest.raises(ServeError, match="requires"):
            Event.from_dict({"kind": "user_depart"})


class TestEventTrace:
    def test_json_round_trip_is_exact(self, serve_scenario):
        trace = generate_event_trace(serve_scenario, 20, seed=5)
        restored = EventTrace.from_json(trace.to_json(indent=2))
        assert restored == trace
        assert restored.seed == 5

    def test_json_payload_shape(self):
        trace = EventTrace(
            events=(Event(kind="user_depart", user=1),), seed=9, name="t"
        )
        payload = json.loads(trace.to_json())
        assert payload["format"] == TRACE_FORMAT
        assert payload["seed"] == 9
        assert payload["events"] == [{"kind": "user_depart", "user": 1}]

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ServeError, match="invalid event-trace JSON"):
            EventTrace.from_json("{not json")
        with pytest.raises(ServeError, match="not an event trace"):
            EventTrace.from_json(json.dumps({"format": "other"}))
        with pytest.raises(ServeError, match="'events' list"):
            EventTrace.from_json(
                json.dumps({"format": TRACE_FORMAT, "events": "nope"})
            )

    def test_sequence_protocol(self):
        events = (
            Event(kind="user_depart", user=0),
            Event(kind="user_arrive", user=0),
        )
        trace = EventTrace(events=events)
        assert len(trace) == 2
        assert trace[1] == events[1]
        assert tuple(trace) == events


class TestGenerator:
    def test_deterministic_per_seed(self, serve_scenario):
        first = generate_event_trace(serve_scenario, 30, seed=11)
        second = generate_event_trace(serve_scenario, 30, seed=11)
        other = generate_event_trace(serve_scenario, 30, seed=12)
        assert first == second
        assert first != other

    def test_mixes_all_kinds(self, serve_scenario):
        trace = generate_event_trace(serve_scenario, 60, seed=1)
        kinds = {event.kind for event in trace}
        assert kinds == {
            "user_arrive",
            "user_depart",
            "capacity_change",
            "popularity_update",
        }

    def test_depart_only_weights_respect_min_active(self, serve_scenario):
        num_users = serve_scenario.instance.num_users
        trace = generate_event_trace(
            serve_scenario,
            3 * num_users,
            seed=2,
            weights=(0.0, 1.0, 0.0, 0.0),
            min_active_users=2,
        )
        departed = set()
        for event in trace:
            if event.kind == "user_depart":
                departed.add(event.user)
            elif event.kind == "user_arrive":
                departed.discard(event.user)
        assert num_users - len(departed) >= 2

    def test_arrive_without_departed_falls_back_to_depart(self, serve_scenario):
        trace = generate_event_trace(
            serve_scenario, 1, seed=4, weights=(1.0, 0.0, 0.0, 0.0)
        )
        assert trace[0].kind == "user_depart"

    def test_validation(self, serve_scenario):
        with pytest.raises(ServeError, match="non-negative"):
            generate_event_trace(serve_scenario, -1)
        with pytest.raises(ServeError, match="entries"):
            generate_event_trace(serve_scenario, 5, weights=(1.0,))
        with pytest.raises(ServeError, match="non-negative"):
            generate_event_trace(serve_scenario, 5, weights=(1, 1, 1, -1))


class TestApplyEvent:
    def test_depart_zeroes_row(self, serve_scenario):
        carrier = carrier_for(serve_scenario)
        nonzero = np.flatnonzero(carrier.demand[3])
        changed, capacity_changed = apply_event(
            carrier, Event(kind="user_depart", user=3), serve_scenario.demand
        )
        assert not capacity_changed
        assert np.array_equal(changed, nonzero)
        assert not carrier.demand[3].any()

    def test_arrive_restores_original_row(self, serve_scenario):
        carrier = carrier_for(serve_scenario)
        apply_event(
            carrier, Event(kind="user_depart", user=5), serve_scenario.demand
        )
        changed, _ = apply_event(
            carrier, Event(kind="user_arrive", user=5), serve_scenario.demand
        )
        assert changed.size
        assert np.array_equal(carrier.demand[5], serve_scenario.demand[5])

    def test_arrive_for_active_user_changes_nothing(self, serve_scenario):
        carrier = carrier_for(serve_scenario)
        changed, capacity_changed = apply_event(
            carrier, Event(kind="user_arrive", user=0), serve_scenario.demand
        )
        assert changed.size == 0 and not capacity_changed

    def test_capacity_change(self, serve_scenario):
        carrier = carrier_for(serve_scenario)
        changed, capacity_changed = apply_event(
            carrier,
            Event(kind="capacity_change", server=1, capacity_bytes=12345),
            serve_scenario.demand,
        )
        assert capacity_changed and changed.size == 0
        assert int(carrier.capacities[1]) == 12345

    def test_arrive_out_of_range_rejected(self, serve_scenario):
        carrier = carrier_for(serve_scenario)
        with pytest.raises(ServeError, match="out of range"):
            apply_event(
                carrier,
                Event(kind="user_arrive", user=10_000),
                serve_scenario.demand,
            )
