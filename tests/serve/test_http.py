"""HTTP/JSON transport: an in-process server driven through urllib."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    PlacementService,
    generate_event_trace,
    resolve_from_scratch,
    serve_http,
)


@pytest.fixture
def http_server(micro_scenario):
    """A live server on an ephemeral port; stopped at teardown."""
    service = PlacementService(micro_scenario, engine="sparse")
    server = serve_http(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def get_json(server, path, expect_status=200):
    url = f"http://127.0.0.1:{server.port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            assert response.status == expect_status
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        assert error.code == expect_status, error.read().decode("utf-8")
        return json.loads(error.read().decode("utf-8"))


def post_json(server, path, payload, expect_status=200):
    url = f"http://127.0.0.1:{server.port}{path}"
    body = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == expect_status
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        assert error.code == expect_status, error.read().decode("utf-8")
        return json.loads(error.read().decode("utf-8"))


class TestGet:
    def test_status(self, http_server):
        payload = get_json(http_server, "/status")
        assert payload["solver"] == "gen"
        assert payload["engine"] == "sparse"
        assert payload["events_processed"] == 0
        assert 0.0 < payload["hit_ratio"] <= 1.0

    def test_route_matches_service(self, http_server):
        service = http_server.service
        expected = service.route(1, 2).to_dict()
        assert get_json(http_server, "/route?user=1&model=2") == expected

    def test_route_missing_param_is_400(self, http_server):
        payload = get_json(http_server, "/route?user=1", expect_status=400)
        assert "model" in payload["error"]

    def test_route_bad_param_is_400(self, http_server):
        payload = get_json(
            http_server, "/route?user=x&model=0", expect_status=400
        )
        assert "integer" in payload["error"]

    def test_route_out_of_range_is_400(self, http_server):
        payload = get_json(
            http_server, "/route?user=9999&model=0", expect_status=400
        )
        assert "out of range" in payload["error"]

    def test_placement(self, http_server):
        payload = get_json(http_server, "/placement")
        assert payload == http_server.service.placement_dict()

    def test_unknown_path_is_404(self, http_server):
        payload = get_json(http_server, "/nope", expect_status=404)
        assert "unknown path" in payload["error"]


class TestPostEvents:
    def test_events_list_processed_in_order(self, http_server, micro_scenario):
        events = [
            {"kind": "user_depart", "user": 3},
            {"kind": "popularity_update", "model": 1, "factor": 2.0},
            {"kind": "user_arrive", "user": 3},
        ]
        payload = post_json(http_server, "/events", {"events": events})
        assert payload["processed"] == 3
        assert [r["event"] for r in payload["results"]] == events
        assert payload["hit_ratio"] == http_server.service.hit_ratio
        assert get_json(http_server, "/status")["events_processed"] == 3

    def test_trace_payload_and_scratch_equality(
        self, http_server, micro_scenario
    ):
        trace = generate_event_trace(micro_scenario, 8, seed=19)
        payload = post_json(
            http_server, "/events", json.loads(trace.to_json())
        )
        assert payload["processed"] == 8
        records = resolve_from_scratch(
            micro_scenario, trace, solver="gen", engine="sparse"
        )
        assert payload["hit_ratio"] == records[-1].hit_ratio

    def test_bare_list_accepted(self, http_server):
        payload = post_json(
            http_server, "/events", [{"kind": "user_depart", "user": 0}]
        )
        assert payload["processed"] == 1

    def test_invalid_json_is_400(self, http_server):
        payload = post_json(
            http_server, "/events", b"{broken", expect_status=400
        )
        assert "invalid JSON" in payload["error"]

    def test_bad_shape_is_400(self, http_server):
        payload = post_json(
            http_server, "/events", {"nope": 1}, expect_status=400
        )
        assert "events" in payload["error"]

    def test_unknown_kind_is_400(self, http_server):
        payload = post_json(
            http_server,
            "/events",
            {"events": [{"kind": "meteor_strike"}]},
            expect_status=400,
        )
        assert "unknown event kind" in payload["error"]

    def test_post_unknown_path_is_404(self, http_server):
        payload = post_json(http_server, "/other", {}, expect_status=404)
        assert "unknown path" in payload["error"]
