"""The resident service: construction, routing, policy, session API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import hit_ratio as batch_hit_ratio
from repro.errors import ServeError
from repro.serve import (
    Event,
    PlacementService,
    ResolvePolicy,
    ServiceSession,
    generate_event_trace,
)
from repro.core.gen import TrimCachingGen


class TestConstruction:
    def test_rejects_unknown_solver(self, micro_scenario):
        with pytest.raises(ServeError, match="solvers"):
            PlacementService(micro_scenario, solver="spec")

    def test_rejects_unknown_engine(self, micro_scenario):
        with pytest.raises(ServeError, match="engines"):
            PlacementService(micro_scenario, engine="compiled")

    def test_initial_solve_matches_batch_solver(self, serve_scenario):
        service = PlacementService(serve_scenario, solver="gen", engine="dense")
        batch = TrimCachingGen(accelerated=True, fill_zero_gain=False).solve(
            serve_scenario.instance
        )
        assert service.hit_ratio == batch.hit_ratio
        assert np.array_equal(
            service.state.placement.matrix, batch.placement.matrix
        )

    def test_scenario_arrays_never_mutated(self, micro_scenario):
        demand_before = micro_scenario.demand.copy()
        capacities_before = np.asarray(
            micro_scenario.instance.capacities
        ).copy()
        service = PlacementService(micro_scenario)
        service.process(Event(kind="user_depart", user=0))
        service.process(
            Event(kind="capacity_change", server=0, capacity_bytes=1)
        )
        assert np.array_equal(micro_scenario.demand, demand_before)
        assert np.array_equal(
            np.asarray(micro_scenario.instance.capacities), capacities_before
        )


class TestRoute:
    def test_route_matches_placement(self, serve_scenario):
        service = PlacementService(serve_scenario)
        instance = service.instance
        placement = service.state.placement.matrix
        feasible = serve_scenario.instance.feasible  # (M, K, I) dense
        for user in range(0, instance.num_users, 7):
            for model in range(0, instance.num_models, 5):
                result = service.route(user, model)
                servers = np.flatnonzero(
                    feasible[:, user, model] & placement[:, model]
                )
                if servers.size:
                    assert result.hit and result.server == int(servers[0])
                else:
                    assert not result.hit and result.server is None

    def test_route_validates_indices(self, micro_scenario):
        service = PlacementService(micro_scenario)
        with pytest.raises(ServeError, match="user"):
            service.route(-1, 0)
        with pytest.raises(ServeError, match="model"):
            service.route(0, 10_000)

    def test_route_to_dict(self, micro_scenario):
        service = PlacementService(micro_scenario)
        payload = service.route(0, 0).to_dict()
        assert set(payload) == {"user", "model", "server", "hit"}


class TestProcess:
    def test_noop_events(self, micro_scenario):
        service = PlacementService(micro_scenario)
        before = service.hit_ratio
        arrive = service.process(Event(kind="user_arrive", user=0))
        scale = service.process(
            Event(kind="popularity_update", model=0, factor=1.0)
        )
        assert arrive.mode == "noop" and scale.mode == "noop"
        assert service.counters["noop"] == 2
        assert service.hit_ratio == before

    def test_capacity_event_forces_full(self, micro_scenario):
        service = PlacementService(micro_scenario)
        capacity = int(np.asarray(service.instance.capacities)[0] // 2)
        result = service.process(
            Event(kind="capacity_change", server=0, capacity_bytes=capacity)
        )
        assert result.action == "full" and result.mode == "full"

    def test_counters_track_modes(self, serve_scenario):
        service = PlacementService(serve_scenario, engine="sparse")
        trace = generate_event_trace(serve_scenario, 20, seed=9)
        results = service.process_trace(trace)
        assert len(results) == 20
        assert service.events_processed == 20
        assert sum(service.counters.values()) == 20
        assert len(service.hit_ratios) == 21  # initial solve + one per event
        modes = {result.mode for result in results}
        assert modes <= {"replay", "fallback", "full", "noop"}

    def test_hit_ratio_stays_consistent_with_placement(self, serve_scenario):
        service = PlacementService(serve_scenario)
        trace = generate_event_trace(serve_scenario, 10, seed=21)
        for event in trace:
            result = service.process(event)
            recomputed = batch_hit_ratio(
                service.instance, service.state.placement
            )
            assert result.hit_ratio == pytest.approx(recomputed, abs=1e-12)

    def test_full_policy_always_full(self, micro_scenario):
        service = PlacementService(
            micro_scenario, policy=ResolvePolicy(mode="full")
        )
        result = service.process(Event(kind="user_depart", user=1))
        assert result.action == "full"
        assert service.counters["full"] == 1

    def test_event_result_to_dict(self, micro_scenario):
        service = PlacementService(micro_scenario)
        payload = service.process(Event(kind="user_depart", user=2)).to_dict()
        assert payload["event"] == {"kind": "user_depart", "user": 2}
        assert payload["action"] in {"patch", "full"}
        assert payload["latency_s"] >= 0


class TestStatus:
    def test_status_payload(self, micro_scenario):
        service = PlacementService(micro_scenario, engine="sparse")
        status = service.status()
        assert status["solver"] == "gen"
        assert status["engine"] == "sparse"
        assert status["num_models"] == micro_scenario.instance.num_models
        assert status["events_processed"] == 0
        assert status["policy"]["mode"] == "auto"

    def test_placement_dict(self, micro_scenario):
        service = PlacementService(micro_scenario)
        payload = service.placement_dict()
        assert payload["hit_ratio"] == service.hit_ratio
        matrix = service.state.placement.matrix
        for server, models in payload["servers"].items():
            assert np.array_equal(
                np.flatnonzero(matrix[int(server)]), np.asarray(models)
            )


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ServeError):
            ResolvePolicy(mode="sometimes")
        with pytest.raises(ServeError):
            ResolvePolicy(full_every=-1)
        with pytest.raises(ServeError):
            ResolvePolicy(max_changed_fraction=0.0)

    def test_choose_rules(self):
        policy = ResolvePolicy(full_every=3, max_changed_fraction=0.5)
        assert policy.choose(0, 1, 10, capacity_changed=True) == "full"
        assert policy.choose(0, 1, 10, capacity_changed=False) == "patch"
        assert policy.choose(2, 1, 10, capacity_changed=False) == "full"
        assert policy.choose(0, 6, 10, capacity_changed=False) == "full"
        assert ResolvePolicy(mode="patch").choose(2, 9, 10, False) == "patch"
        assert ResolvePolicy(mode="full").choose(0, 0, 10, False) == "full"


class TestServiceSession:
    def test_session_round_trip(self, serve_scenario):
        session = ServiceSession(serve_scenario, engine="sparse")
        baseline = session.hit_ratio
        departed = session.depart(4)
        assert departed.event.kind == "user_depart"
        returned = session.arrive(4)
        assert returned.hit_ratio == baseline
        assert session.route(0, 0).user == 0
        assert session.status()["events_processed"] == 2

    def test_session_capacity_and_popularity(self, micro_scenario):
        session = ServiceSession(micro_scenario)
        capacity = int(np.asarray(session.service.instance.capacities)[1])
        result = session.set_capacity(1, capacity * 2)
        assert result.mode == "full"
        scaled = session.scale_popularity(2, 1.8)
        assert scaled.event.factor == 1.8

    def test_session_apply_trace(self, micro_scenario):
        session = ServiceSession(micro_scenario)
        trace = generate_event_trace(micro_scenario, 6, seed=13)
        results = session.apply(trace)
        assert [r.event for r in results] == list(trace.events)


class TestStatsCounters:
    def test_stats_reflect_processed_events(self, serve_scenario):
        session = ServiceSession(serve_scenario, engine="sparse")
        stats = session.stats()
        assert stats == {
            "replay": 0,
            "fallback": 0,
            "full": 0,
            "noop": 0,
            "events_processed": 0,
        }
        results = session.apply(generate_event_trace(serve_scenario, 8, seed=3))
        stats = session.stats()
        assert stats["events_processed"] == len(results)
        mode_total = (
            stats["replay"] + stats["fallback"] + stats["full"] + stats["noop"]
        )
        assert mode_total == len(results)
        for result in results:
            assert result.mode in ("replay", "fallback", "full", "noop")

    def test_stats_matches_status_counters(self, serve_scenario):
        service = PlacementService(serve_scenario)
        service.process(Event(kind="user_depart", user=1))
        status = service.status()
        stats = service.stats()
        assert stats["events_processed"] == status["events_processed"] == 1
        for key, value in status["counters"].items():
            assert stats[key] == value
