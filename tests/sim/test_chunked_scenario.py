"""Chunked scenario pipeline: bit-identity to the unchunked v2 build."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gen import TrimCachingGen
from repro.errors import ConfigurationError
from repro.models.popularity import ZipfPopularity
from repro.network.users import UserBatch
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_scenario

BASE = ScenarioConfig(
    num_users=41,
    num_servers=4,
    num_models=12,
    requests_per_user=5,
    rng_scheme="v2",
)


def _assert_identical(chunked, reference):
    assert np.array_equal(chunked.demand, reference.demand)
    assert np.array_equal(
        chunked.topology.distances, reference.topology.distances
    )
    assert np.array_equal(
        chunked.topology.deadlines_matrix, reference.topology.deadlines_matrix
    )
    assert chunked.instance.sparse_feasible == reference.instance.sparse_feasible


class TestChunkedIdentity:
    @pytest.mark.parametrize("chunk_size", [1, 7, 41, 40, 64, 13])
    def test_chunked_equals_unchunked(self, chunk_size):
        reference = build_scenario(BASE, seed=3)
        chunked = build_scenario(
            BASE.with_overrides(chunk_size=chunk_size), seed=3
        )
        _assert_identical(chunked, reference)

    def test_no_subset_variant(self):
        base = BASE.with_overrides(requests_per_user=None)
        reference = build_scenario(base, seed=11)
        chunked = build_scenario(base.with_overrides(chunk_size=6), seed=11)
        _assert_identical(chunked, reference)

    def test_shared_popularity_variant(self):
        base = BASE.with_overrides(per_user_popularity=False)
        reference = build_scenario(base, seed=5)
        chunked = build_scenario(base.with_overrides(chunk_size=5), seed=5)
        _assert_identical(chunked, reference)

    def test_solver_sees_identical_instance(self):
        reference = build_scenario(BASE, seed=9)
        chunked = build_scenario(BASE.with_overrides(chunk_size=10), seed=9)
        solver = TrimCachingGen()
        a = solver.solve(reference.instance)
        b = solver.solve(chunked.instance)
        assert a.hit_ratio == b.hit_ratio
        assert np.array_equal(a.placement.matrix, b.placement.matrix)

    @settings(max_examples=25, deadline=None)
    @given(chunk_size=st.integers(min_value=1, max_value=55))
    def test_any_chunk_size_is_identical(self, chunk_size):
        reference = build_scenario(BASE, seed=7)
        chunked = build_scenario(
            BASE.with_overrides(chunk_size=chunk_size), seed=7
        )
        _assert_identical(chunked, reference)


class TestChunkedPopularity:
    @pytest.mark.parametrize("per_user", [True, False])
    @pytest.mark.parametrize("chunk_size", [1, 4, 19, 30])
    def test_chunked_rows_match_full_call(self, per_user, chunk_size):
        popularity = ZipfPopularity(per_user_permutation=per_user)
        full = popularity.probabilities_batched(
            19, 8, np.random.default_rng(2)
        )
        chunked = popularity.probabilities_batched_chunked(
            19, 8, chunk_size, np.random.default_rng(2)
        )
        assert np.array_equal(full, chunked)

    def test_rejects_bad_chunk(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            ZipfPopularity().probabilities_batched_chunked(5, 3, 0)


class TestChunkedValidation:
    def test_chunk_size_requires_v2(self):
        with pytest.raises(ConfigurationError, match="rng_scheme='v2'"):
            ScenarioConfig(rng_scheme="v1", chunk_size=8)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(rng_scheme="v2", chunk_size=0)

    def test_chunked_refuses_dense_feasibility(self):
        config = BASE.with_overrides(chunk_size=8)
        with pytest.raises(ValueError, match="sparse"):
            build_scenario(config, seed=0, feasibility="dense")

    def test_config_round_trips_chunk_size(self):
        config = BASE.with_overrides(chunk_size=16)
        assert ScenarioConfig.from_dict(config.to_dict()) == config


class TestLazyUsers:
    def test_users_stay_unmaterialised(self):
        scenario = build_scenario(BASE.with_overrides(chunk_size=8), seed=2)
        topology = scenario.topology
        assert topology.user_batch is not None
        assert topology._users is None  # no User objects built yet

    def test_lazy_users_match_eager_build(self):
        reference = build_scenario(BASE, seed=2)
        chunked = build_scenario(BASE.with_overrides(chunk_size=8), seed=2)
        lazy = chunked.topology.users
        eager = reference.topology.users
        assert len(lazy) == len(eager)
        for a, b in zip(lazy, eager):
            assert a.user_id == b.user_id
            assert a.position == b.position
            assert np.array_equal(a.deadlines_s, b.deadlines_s)
            assert np.array_equal(a.inference_latency_s, b.inference_latency_s)


class TestUserBatch:
    def test_validates_like_user(self):
        good = dict(
            positions=np.zeros((3, 2)),
            deadlines_s=np.ones((3, 4)),
            inference_latency_s=np.zeros((3, 4)),
        )
        UserBatch(**good)  # sanity
        with pytest.raises(ConfigurationError, match="positive"):
            UserBatch(**{**good, "deadlines_s": np.zeros((3, 4))})
        with pytest.raises(ConfigurationError, match="non-negative"):
            UserBatch(**{**good, "inference_latency_s": -np.ones((3, 4))})
        with pytest.raises(ConfigurationError, match="equal shape"):
            UserBatch(**{**good, "inference_latency_s": np.zeros((3, 5))})
        with pytest.raises(ConfigurationError, match="one entry per"):
            UserBatch(**{**good, "positions": np.zeros((4, 2))})
        with pytest.raises(ConfigurationError, match="\\(K, 2\\)"):
            UserBatch(**{**good, "positions": np.zeros((3, 3))})
        with pytest.raises(ConfigurationError, match="active_probability"):
            UserBatch(**good, active_probability=0.0)

    def test_user_views_share_rows(self):
        batch = UserBatch(
            positions=np.arange(6, dtype=float).reshape(3, 2),
            deadlines_s=np.ones((3, 2)),
            inference_latency_s=np.zeros((3, 2)),
        )
        user = batch.user(1)
        assert user.user_id == 1
        assert user.position.x == 2.0 and user.position.y == 3.0
        assert np.shares_memory(user.deadlines_s, batch.deadlines_s)
        assert len(batch.to_users()) == 3
        with pytest.raises(ConfigurationError, match="out of range"):
            batch.user(3)
