"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(
            action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        commands = set(sub.choices)
        for expected in (
            "fig1",
            "table1",
            "fig4a",
            "fig4b",
            "fig4c",
            "fig5a",
            "fig5b",
            "fig5c",
            "fig6a",
            "fig6b",
            "fig7",
            "ablation-epsilon",
        ):
            assert expected in commands

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_fig1(self, capsys):
        assert main(["fig1", "--step", "50"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "frozen layers" in out

    def test_table1(self, capsys):
        assert main(["table1", "--models", "30"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "dedup storage savings" in out

    def test_fig4a_tiny(self, capsys):
        assert main(["fig4a", "--topologies", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4(a)" in out
        assert "TrimCaching Spec (mean)" in out

    def test_fig6a_tiny(self, capsys):
        assert main(["fig6a", "--topologies", "1"]) == 0
        out = capsys.readouterr().out
        assert "runtime" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestGenericSweep:
    def test_sweep_registered(self):
        parser = build_parser()
        sub = next(
            action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        assert "sweep" in sub.choices
        assert "solvers" in sub.choices

    def test_sweep_runs_with_defaults(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--axis",
                    "capacity",
                    "--algos",
                    "gen,independent",
                    "--topologies",
                    "1",
                    "--scale",
                    "0.05",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "TrimCaching Gen (mean)" in out
        assert "Independent Caching (mean)" in out

    def test_sweep_custom_axis_and_points(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--axis",
                    "zipf_exponent",
                    "--points",
                    "0.5,1.2",
                    "--algos",
                    "gen",
                    "--topologies",
                    "1",
                    "--scale",
                    "0.05",
                    "--engine",
                    "sparse",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "zipf_exponent" in out

    def test_sweep_rng_scheme_v2_runs(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--axis",
                    "users",
                    "--points",
                    "4,8",
                    "--algos",
                    "gen",
                    "--topologies",
                    "1",
                    "--scale",
                    "0.05",
                    "--rng-scheme",
                    "v2",
                ]
            )
            == 0
        )
        assert "TrimCaching Gen (mean)" in capsys.readouterr().out

    def test_sweep_rng_scheme_lands_in_plan(self, capsys):
        import json

        assert (
            main(
                [
                    "sweep",
                    "--axis",
                    "users",
                    "--points",
                    "4",
                    "--rng-scheme",
                    "v2",
                    "--dry-run",
                ]
            )
            == 0
        )
        plan = json.loads(capsys.readouterr().out)
        assert plan["base"]["rng_scheme"] == "v2"

    def test_sweep_profile_appends_stats(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--axis",
                    "users",
                    "--points",
                    "4",
                    "--algos",
                    "gen",
                    "--topologies",
                    "1",
                    "--scale",
                    "0.05",
                    "--profile",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "TrimCaching Gen (mean)" in out
        assert "cumulative time" in out
        assert "function calls" in out

    def test_sweep_dry_run_prints_plan(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--axis",
                    "users",
                    "--points",
                    "4,8",
                    "--algos",
                    "gen",
                    "--dry-run",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert '"format": "trimcaching-plan-v1"' in out
        assert '"kind": "sweep"' in out

    def test_sweep_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        assert (
            main(
                [
                    "sweep",
                    "--axis",
                    "capacity",
                    "--points",
                    "0.5",
                    "--algos",
                    "gen",
                    "--topologies",
                    "1",
                    "--scale",
                    "0.05",
                    "--json",
                    str(out_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        from repro.sim.serialization import result_set_from_json

        restored = result_set_from_json(out_file.read_text())
        assert restored.plan is not None
        assert restored.plan.sweep.points == (0.5,)

    def test_sweep_unknown_solver_exits_nonzero(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--axis",
                    "capacity",
                    "--algos",
                    "not-a-solver",
                    "--topologies",
                    "1",
                ]
            )
            == 2
        )
        assert "registered solvers" in capsys.readouterr().err

    def test_sweep_axis_without_default_points_exits_2(self, capsys):
        assert main(["sweep", "--axis", "zipf_exponent", "--algos", "gen"]) == 2
        assert "--points is required" in capsys.readouterr().err

    def test_solvers_command(self, capsys):
        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        assert "gen" in out
        assert "TrimCaching Spec" in out

    def test_fig4a_engine_flag(self, capsys):
        assert (
            main(
                ["fig4a", "--topologies", "1", "--scale", "0.05", "--engine", "sparse"]
            )
            == 0
        )
        assert "Fig. 4(a)" in capsys.readouterr().out

    def test_sweep_bad_points_exits_2(self, capsys):
        assert (
            main(["sweep", "--axis", "capacity", "--points", "abc", "--algos", "gen"])
            == 2
        )
        assert "invalid --points" in capsys.readouterr().err


class TestPlanFileSweep:
    """The --plan / --backend / --cache-dir execution front end."""

    def _write_plan(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--axis",
                    "capacity",
                    "--points",
                    "0.5",
                    "--algos",
                    "gen",
                    "--topologies",
                    "1",
                    "--scale",
                    "0.05",
                    "--dry-run",
                ]
            )
            == 0
        )
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(capsys.readouterr().out)
        return plan_file

    def test_plan_file_runs(self, tmp_path, capsys):
        plan_file = self._write_plan(tmp_path, capsys)
        assert main(["sweep", "--plan", str(plan_file)]) == 0
        assert "TrimCaching Gen (mean)" in capsys.readouterr().out

    def test_plan_file_with_cache_hits_second_time(self, tmp_path, capsys):
        plan_file = self._write_plan(tmp_path, capsys)
        cache = tmp_path / "cache"
        out1, out2 = tmp_path / "r1.json", tmp_path / "r2.json"
        argv = ["sweep", "--plan", str(plan_file), "--cache-dir", str(cache)]
        assert main(argv + ["--json", str(out1)]) == 0
        first = capsys.readouterr().out
        assert "cache miss" in first
        assert main(argv + ["--backend", "serial", "--json", str(out2)]) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second
        assert "0/1 tasks run" in second
        # The warm result set is byte-identical to the cold one.
        assert out1.read_bytes() == out2.read_bytes()

    def test_backend_without_cache(self, tmp_path, capsys):
        plan_file = self._write_plan(tmp_path, capsys)
        assert (
            main(["sweep", "--plan", str(plan_file), "--backend", "cluster"])
            == 0
        )
        out = capsys.readouterr().out
        assert "backend cluster" in out

    def test_explicit_workers_overrides_plan_width(self, tmp_path, capsys):
        # --workers is honoured even without --backend when a cache is
        # in play, and an explicit value can lower the plan's own width.
        plan_file = self._write_plan(tmp_path, capsys)
        cache = tmp_path / "cache"
        assert (
            main(
                [
                    "sweep",
                    "--plan",
                    str(plan_file),
                    "--cache-dir",
                    str(cache),
                    "--workers",
                    "1",
                ]
            )
            == 0
        )
        assert "backend serial" in capsys.readouterr().out

    def test_explicit_workers_overrides_plan_on_plain_path(
        self, tmp_path, capsys
    ):
        # Without --backend/--cache-dir too: the executed plan's workers
        # field follows the flag (visible via --dry-run round-trip).
        import json as json_mod

        plan_file = self._write_plan(tmp_path, capsys)
        payload = json_mod.loads(plan_file.read_text())
        payload["workers"] = 4
        plan_file.write_text(json_mod.dumps(payload))
        assert (
            main(
                [
                    "sweep",
                    "--plan",
                    str(plan_file),
                    "--workers",
                    "1",
                    "--dry-run",
                ]
            )
            == 0
        )
        emitted = json_mod.loads(capsys.readouterr().out)
        assert emitted["workers"] == 1

    def test_missing_plan_file_exits_2(self, capsys):
        assert main(["sweep", "--plan", "/nonexistent/plan.json"]) == 2
        assert "cannot read --plan" in capsys.readouterr().err

    def test_grid_flags_conflict_with_plan(self, tmp_path, capsys):
        # Experiment-defining flags are refused, not silently ignored.
        plan_file = self._write_plan(tmp_path, capsys)
        assert (
            main(["sweep", "--plan", str(plan_file), "--seed", "99"]) == 2
        )
        err = capsys.readouterr().err
        assert "--plan already defines the experiment" in err
        assert "--seed" in err
        assert (
            main(
                [
                    "sweep",
                    "--plan",
                    str(plan_file),
                    "--engine",
                    "sparse",
                    "--topologies",
                    "5",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "--engine" in err and "--topologies" in err
        assert (
            main(
                ["sweep", "--plan", str(plan_file), "--rng-scheme", "v2"]
            )
            == 2
        )
        assert "--rng-scheme" in capsys.readouterr().err

    def test_neither_axis_nor_plan_exits_2(self, capsys):
        assert main(["sweep", "--algos", "gen"]) == 2
        assert "either --axis or --plan" in capsys.readouterr().err

    def test_dry_run_round_trips_plan_file(self, tmp_path, capsys):
        plan_file = self._write_plan(tmp_path, capsys)
        assert main(["sweep", "--plan", str(plan_file), "--dry-run"]) == 0
        assert capsys.readouterr().out.strip() == plan_file.read_text().strip()


class TestFaultFlags:
    """The --retries / --task-timeout / --heartbeat / --chaos flags."""

    def _write_plan(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--axis",
                    "capacity",
                    "--points",
                    "0.5",
                    "--algos",
                    "gen",
                    "--topologies",
                    "1",
                    "--scale",
                    "0.05",
                    "--dry-run",
                ]
            )
            == 0
        )
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(capsys.readouterr().out)
        return plan_file

    def test_fault_flags_require_explicit_backend(self, tmp_path, capsys):
        plan_file = self._write_plan(tmp_path, capsys)
        assert main(["sweep", "--plan", str(plan_file), "--retries", "2"]) == 2
        assert "require an explicit --backend" in capsys.readouterr().err

    def test_remote_only_flags_rejected_on_process(self, tmp_path, capsys):
        plan_file = self._write_plan(tmp_path, capsys)
        assert (
            main(
                [
                    "sweep",
                    "--plan",
                    str(plan_file),
                    "--backend",
                    "process",
                    "--chaos",
                    "kill-worker:1",
                ]
            )
            == 2
        )
        assert "remote backend" in capsys.readouterr().err

    def test_serial_rejects_retries(self, tmp_path, capsys):
        plan_file = self._write_plan(tmp_path, capsys)
        assert (
            main(
                [
                    "sweep",
                    "--plan",
                    str(plan_file),
                    "--backend",
                    "serial",
                    "--retries",
                    "2",
                ]
            )
            == 2
        )
        assert "no failure domain" in capsys.readouterr().err

    def test_bad_chaos_spec_exits_2(self, tmp_path, capsys):
        plan_file = self._write_plan(tmp_path, capsys)
        assert (
            main(
                [
                    "sweep",
                    "--plan",
                    str(plan_file),
                    "--backend",
                    "remote",
                    "--chaos",
                    "explode:1",
                ]
            )
            == 2
        )
        assert "unknown chaos facet" in capsys.readouterr().err

    def test_remote_backend_runs_a_plan(self, tmp_path, capsys):
        plan_file = self._write_plan(tmp_path, capsys)
        assert (
            main(
                [
                    "sweep",
                    "--plan",
                    str(plan_file),
                    "--backend",
                    "remote",
                    "--heartbeat",
                    "0.05",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "backend remote" in out
        assert "retried" not in out  # failure-free: no fault tail

    def test_chaos_run_footer_counts_the_faults(self, tmp_path, capsys):
        # One worker, armed to die on its first task: the (default)
        # remote retry policy recovers via a replacement, and the
        # footer accounts exactly one retry and one lost worker.
        plan_file = self._write_plan(tmp_path, capsys)
        assert (
            main(
                [
                    "sweep",
                    "--plan",
                    str(plan_file),
                    "--backend",
                    "remote",
                    "--retries",
                    "3",
                    "--heartbeat",
                    "0.05",
                    "--chaos",
                    "kill-worker:0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "backend remote" in out
        assert "1 retried" in out
        assert "1 worker(s) lost" in out


class TestScaleFlags:
    """--chunk-size / --sample-users are v2-only domain errors otherwise."""

    BASE = [
        "sweep",
        "--axis",
        "capacity",
        "--points",
        "0.2",
        "--algos",
        "gen",
        "--topologies",
        "1",
    ]

    def test_chunk_size_without_v2_exits_2(self, capsys):
        assert main(self.BASE + ["--chunk-size", "8"]) == 2
        err = capsys.readouterr().err
        assert "--chunk-size requires --rng-scheme v2" in err

    def test_chunk_size_with_explicit_v1_exits_2(self, capsys):
        assert (
            main(self.BASE + ["--rng-scheme", "v1", "--chunk-size", "8"]) == 2
        )
        assert "requires --rng-scheme v2" in capsys.readouterr().err

    def test_sample_users_without_v2_exits_2(self, capsys):
        assert main(self.BASE + ["--sample-users", "10"]) == 2
        err = capsys.readouterr().err
        assert "--sample-users requires --rng-scheme v2" in err

    def test_sampled_evaluation_requires_sample_users(self, capsys):
        assert (
            main(
                self.BASE
                + ["--rng-scheme", "v2", "--evaluation", "sampled"]
            )
            == 2
        )
        assert "requires --sample-users" in capsys.readouterr().err

    def test_sample_users_conflicts_with_monte_carlo(self, capsys):
        assert (
            main(
                self.BASE
                + [
                    "--rng-scheme",
                    "v2",
                    "--sample-users",
                    "10",
                    "--evaluation",
                    "monte_carlo",
                ]
            )
            == 2
        )
        assert "conflicts with --evaluation monte_carlo" in (
            capsys.readouterr().err
        )

    def test_chunked_sampled_sweep_runs(self, capsys):
        assert (
            main(
                self.BASE
                + [
                    "--rng-scheme",
                    "v2",
                    "--users",
                    "60",
                    "--chunk-size",
                    "16",
                    "--sample-users",
                    "20",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Gen" in out
