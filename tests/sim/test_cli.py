"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(
            action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        commands = set(sub.choices)
        for expected in (
            "fig1",
            "table1",
            "fig4a",
            "fig4b",
            "fig4c",
            "fig5a",
            "fig5b",
            "fig5c",
            "fig6a",
            "fig6b",
            "fig7",
            "ablation-epsilon",
        ):
            assert expected in commands

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_fig1(self, capsys):
        assert main(["fig1", "--step", "50"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "frozen layers" in out

    def test_table1(self, capsys):
        assert main(["table1", "--models", "30"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "dedup storage savings" in out

    def test_fig4a_tiny(self, capsys):
        assert main(["fig4a", "--topologies", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4(a)" in out
        assert "TrimCaching Spec (mean)" in out

    def test_fig6a_tiny(self, capsys):
        assert main(["fig6a", "--topologies", "1"]) == 0
        out = capsys.readouterr().out
        assert "runtime" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
