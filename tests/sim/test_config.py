"""Tests for ScenarioConfig validation and defaults."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import ScenarioConfig
from repro.utils.units import GB, MHZ, dbm_to_watts


class TestPaperDefaults:
    def test_section_7a_values(self):
        config = ScenarioConfig()
        assert config.area_side_m == 1000.0
        assert config.coverage_radius_m == 275.0
        assert config.total_bandwidth_hz == 400 * MHZ
        assert config.total_power_watts == pytest.approx(dbm_to_watts(43.0))
        assert config.active_probability == 0.5
        assert config.backhaul_rate_bps == 10e9
        assert config.antenna_gain == 1.0
        assert config.path_loss_exponent == 4.0
        assert config.storage_bytes == 1 * GB
        assert config.deadline_range_s == (0.5, 1.0)


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_servers", 0),
            ("num_users", 0),
            ("num_models", 0),
            ("area_side_m", 0.0),
            ("coverage_radius_m", 0.0),
            ("total_bandwidth_hz", 0.0),
            ("total_power_watts", 0.0),
            ("active_probability", 0.0),
            ("active_probability", 1.5),
            ("antenna_gain", 0.0),
            ("path_loss_exponent", 0.0),
            ("backhaul_rate_bps", 0.0),
            ("storage_bytes", -1),
            ("deadline_range_s", (1.0, 0.5)),
            ("deadline_range_s", (0.0, 1.0)),
            ("inference_latency_range_s", (-0.1, 0.2)),
            ("zipf_exponent", -0.5),
            ("library_case", "magic"),
            ("rng_scheme", "v3"),
            ("rng_scheme", ""),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(**{field: value})

    def test_zero_storage_allowed(self):
        assert ScenarioConfig(storage_bytes=0).storage_bytes == 0

    def test_rng_scheme_defaults_to_v1(self):
        assert ScenarioConfig().rng_scheme == "v1"
        assert ScenarioConfig(rng_scheme="v2").rng_scheme == "v2"

    def test_rng_scheme_round_trips(self):
        config = ScenarioConfig(rng_scheme="v2")
        payload = config.to_dict()
        assert payload["rng_scheme"] == "v2"
        assert ScenarioConfig.from_dict(payload) == config


class TestOverrides:
    def test_with_overrides_copies(self):
        base = ScenarioConfig()
        varied = base.with_overrides(num_servers=14, storage_bytes=int(1.5 * GB))
        assert varied.num_servers == 14
        assert base.num_servers == 10  # original untouched

    def test_overrides_are_validated(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig().with_overrides(num_servers=-1)


class TestConfigDictRoundTrip:
    def test_round_trip_identity(self):
        from repro.sim.config import ScenarioConfig

        config = ScenarioConfig(
            num_servers=4,
            num_users=8,
            num_models=12,
            storage_bytes_per_server=(10, 20, 30, 40),
            deadline_range_s=(0.6, 0.9),
        )
        payload = config.to_dict()
        assert payload["storage_bytes_per_server"] == [10, 20, 30, 40]
        assert ScenarioConfig.from_dict(payload) == config

    def test_partial_payload_uses_defaults(self):
        from repro.sim.config import ScenarioConfig

        config = ScenarioConfig.from_dict({"num_users": 5})
        assert config.num_users == 5
        assert config.num_servers == ScenarioConfig().num_servers

    def test_unknown_field_rejected(self):
        from repro.errors import ConfigurationError
        from repro.sim.config import ScenarioConfig

        with pytest.raises(ConfigurationError, match="unknown ScenarioConfig"):
            ScenarioConfig.from_dict({"num_server": 5})
