"""Tests for expected and Monte-Carlo placement evaluation."""

import numpy as np
import pytest

from repro.core.gen import TrimCachingGen
from repro.core.objective import hit_ratio
from repro.sim.evaluator import PlacementEvaluator


@pytest.fixture(scope="module")
def solved(request):
    # Lazily resolve the session-scoped scenario fixture.
    scenario = request.getfixturevalue("tight_scenario")
    result = TrimCachingGen().solve(scenario.instance)
    return scenario, result


class TestExpectedEvaluation:
    def test_matches_objective(self, tight_scenario):
        result = TrimCachingGen().solve(tight_scenario.instance)
        evaluator = PlacementEvaluator(tight_scenario)
        assert evaluator.expected_hit_ratio(result.placement) == pytest.approx(
            result.hit_ratio
        )


class TestMonteCarloEvaluation:
    def test_bounds_and_reproducibility(self, tight_scenario):
        result = TrimCachingGen().solve(tight_scenario.instance)
        evaluator = PlacementEvaluator(tight_scenario)
        a = evaluator.monte_carlo_hit_ratio(result.placement, 50, seed=0)
        b = evaluator.monte_carlo_hit_ratio(result.placement, 50, seed=0)
        assert 0.0 <= a.mean <= 1.0
        assert a.mean == pytest.approx(b.mean)
        assert a.num_realizations == 50

    def test_fading_changes_the_answer(self, tight_scenario):
        result = TrimCachingGen().solve(tight_scenario.instance)
        evaluator = PlacementEvaluator(tight_scenario)
        expected = evaluator.expected_hit_ratio(result.placement)
        faded = evaluator.monte_carlo_hit_ratio(result.placement, 100, seed=1)
        # Rayleigh fading perturbs the hit ratio; it must not be exactly
        # the deterministic value and should carry spread.
        assert faded.mean != pytest.approx(expected, abs=1e-12)
        assert faded.std >= 0.0

    def test_more_realizations_reduce_spread_of_estimate(self, tight_scenario):
        result = TrimCachingGen().solve(tight_scenario.instance)
        evaluator = PlacementEvaluator(tight_scenario)
        means_small = [
            evaluator.monte_carlo_hit_ratio(result.placement, 10, seed=s).mean
            for s in range(6)
        ]
        means_large = [
            evaluator.monte_carlo_hit_ratio(result.placement, 200, seed=s).mean
            for s in range(6)
        ]
        assert np.std(means_large) <= np.std(means_small) + 1e-9

    def test_empty_placement_zero(self, tight_scenario):
        evaluator = PlacementEvaluator(tight_scenario)
        outcome = evaluator.monte_carlo_hit_ratio(
            tight_scenario.instance.new_placement(), 20, seed=0
        )
        assert outcome.mean == 0.0

    def test_invalid_realizations(self, tight_scenario):
        evaluator = PlacementEvaluator(tight_scenario)
        with pytest.raises(ValueError):
            evaluator.monte_carlo_hit_ratio(
                tight_scenario.instance.new_placement(), 0
            )

    def test_invalid_engine(self, tight_scenario):
        evaluator = PlacementEvaluator(tight_scenario)
        with pytest.raises(ValueError, match="engine"):
            evaluator.monte_carlo_hit_ratio(
                tight_scenario.instance.new_placement(), 5, engine="cusparse"
            )


class TestMonteCarloSparseEngine:
    """The CSR walk per fading realisation is pinned to the dense path."""

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_bit_identical_to_dense(self, tight_scenario, seed):
        result = TrimCachingGen().solve(tight_scenario.instance)
        evaluator = PlacementEvaluator(tight_scenario)
        dense = evaluator.monte_carlo_hit_ratio(
            result.placement, 40, seed=seed, engine="dense"
        )
        sparse = evaluator.monte_carlo_hit_ratio(
            result.placement, 40, seed=seed, engine="sparse"
        )
        # Bit-identical, not approximately equal: the sparse walk
        # reproduces the dense einsum's booleans exactly and both
        # engines consume the same RNG stream.
        assert sparse.mean == dense.mean
        assert sparse.std == dense.std

    def test_bit_identical_on_dense_primary_instance(self):
        from repro.sim.config import ScenarioConfig
        from repro.sim.scenario import build_scenario

        scenario = build_scenario(
            ScenarioConfig(num_servers=3, num_users=8, num_models=9),
            seed=21,
            feasibility="dense",
        )
        result = TrimCachingGen().solve(scenario.instance)
        evaluator = PlacementEvaluator(scenario)
        dense = evaluator.monte_carlo_hit_ratio(
            result.placement, 30, seed=2, engine="dense"
        )
        sparse = evaluator.monte_carlo_hit_ratio(
            result.placement, 30, seed=2, engine="sparse"
        )
        assert sparse.mean == dense.mean
        assert sparse.std == dense.std

    def test_empty_placement_zero_on_both_engines(self, tight_scenario):
        evaluator = PlacementEvaluator(tight_scenario)
        empty = tight_scenario.instance.new_placement()
        for engine in ("dense", "sparse"):
            assert (
                evaluator.monte_carlo_hit_ratio(
                    empty, 10, seed=0, engine=engine
                ).mean
                == 0.0
            )
