"""Smoke + shape tests for the per-figure experiment entry points.

These run each experiment at reduced scale and assert the paper's
qualitative findings (the "shape"), not absolute numbers. The benchmark
harness runs the same entry points at fuller scale.
"""

import numpy as np
import pytest

from repro.sim import experiments


class TestFig1:
    def test_series_and_calibration(self):
        result = experiments.fig1_accuracy_vs_frozen(step=10)
        assert result.depths[0] == 0
        assert result.depths[-1] == 107
        assert (np.diff(result.transportation) <= 0).all()
        assert result.average_drop_at_90pct == pytest.approx(0.047, abs=0.006)
        assert "Fig. 1" in result.to_table()

    def test_step_validation(self):
        with pytest.raises(ValueError):
            experiments.fig1_accuracy_vs_frozen(step=0)


class TestTable1:
    def test_full_scale_library(self):
        result = experiments.table1_library_construction(num_models=120, seed=0)
        assert result.num_models == 120
        assert result.num_shared_blocks > 0
        assert 0.0 < result.savings_ratio < 1.0
        table = result.to_table()
        assert "fruit and vegetables" in table
        assert "flowers, trees" in table


class TestSweepFigures:
    """Each panel at toy scale; shape assertions live in integration tests."""

    def test_fig4a_runs(self):
        result = experiments.fig4a_hit_vs_capacity(
            num_topologies=1, capacities_gb=(0.5, 1.0), seed=0, scale=0.05
        )
        assert set(result.series) == {
            "TrimCaching Spec",
            "TrimCaching Gen",
            "Independent Caching",
        }
        assert len(result.x_values) == 2

    def test_fig4b_runs(self):
        result = experiments.fig4b_hit_vs_servers(
            num_topologies=1, server_counts=(4, 6), seed=0, scale=0.05
        )
        assert result.x_values == [4, 6]

    def test_fig4c_runs(self):
        result = experiments.fig4c_hit_vs_users(
            num_topologies=1, user_counts=(6, 10), seed=0, scale=0.05
        )
        assert result.x_values == [6, 10]

    def test_fig5a_excludes_spec(self):
        result = experiments.fig5a_hit_vs_capacity(
            num_topologies=1, capacities_gb=(0.5,), seed=0, scale=0.05
        )
        assert set(result.series) == {"TrimCaching Gen", "Independent Caching"}

    def test_fig5b_runs(self):
        result = experiments.fig5b_hit_vs_servers(
            num_topologies=1, server_counts=(4,), seed=0, scale=0.05
        )
        assert "TrimCaching Gen" in result.series

    def test_fig5c_runs(self):
        result = experiments.fig5c_hit_vs_users(
            num_topologies=1, user_counts=(6,), seed=0, scale=0.05
        )
        assert "Independent Caching" in result.series


class TestFig6:
    def test_fig6a_spec_matches_optimal(self):
        result = experiments.fig6a_optimality_gap(num_topologies=2, seed=0)
        optimal = result.mean_hit("Optimal (exhaustive)")
        spec = result.mean_hit("TrimCaching Spec")
        gen = result.mean_hit("TrimCaching Gen")
        assert spec <= optimal + 1e-9
        assert spec >= 0.95 * optimal  # paper: equal
        assert gen >= 0.8 * optimal  # paper: 1.3% below
        # Exhaustive search is slower (the paper quotes ~10^4-10^5x against
        # naive enumeration; our exhaustive prunes, so assert direction
        # only at this toy scale — the benchmark shows the full factor).
        assert result.speedup("TrimCaching Gen", "Optimal (exhaustive)") > 1

    def test_fig6b_gen_much_faster(self):
        result = experiments.fig6b_runtime_general(num_topologies=1, seed=0)
        assert result.speedup("TrimCaching Gen", "TrimCaching Spec") > 10
        table = result.to_table()
        assert "runtime" in table


class TestFig7:
    def test_mobility_robustness_shape(self):
        result = experiments.fig7_mobility_robustness(
            num_runs=1, horizon_s=600.0, sample_every=24, seed=0
        )
        assert "TrimCaching Spec" in result.series
        assert "TrimCaching Gen" in result.series
        for algo in result.series:
            means = result.series[algo].means
            assert ((0 <= means) & (means <= 1)).all()
        assert "time (min)" in result.to_table()


class TestAblations:
    def test_epsilon_ablation(self):
        result = experiments.ablation_epsilon(
            epsilons=(0.1, 0.5), num_topologies=1, seed=0
        )
        exact = result.mean_hit("Spec (exact)")
        assert result.mean_hit("Spec (eps=0.1)") <= exact + 1e-9
        assert result.mean_hit("Spec (eps=0.5)") <= exact + 1e-9

    def test_lazy_ablation(self):
        result = experiments.ablation_lazy_greedy(num_topologies=1, seed=0)
        assert result.mean_hit("Gen (lazy)") == pytest.approx(
            result.mean_hit("Gen (naive)"), abs=1e-9
        )

    def test_order_ablation(self):
        result = experiments.ablation_server_order(num_topologies=1, seed=0)
        assert len(result.hit_ratios) == 3

    def test_backend_ablation(self):
        result = experiments.ablation_dp_backend(num_topologies=1, seed=0)
        assert result.mean_hit("Spec (value_dp)") <= (
            result.mean_hit("Spec (exact)") + 1e-9
        )
