"""Tests for the cloud-fallback latency accounting."""

import math

import numpy as np
import pytest

from repro.core.gen import TrimCachingGen
from repro.errors import ConfigurationError
from repro.sim.latency_report import LatencyAnalyzer


@pytest.fixture()
def analyzer(tight_scenario):
    return LatencyAnalyzer(tight_scenario)


class TestLatencyReport:
    def test_hit_ratio_matches_objective(self, tight_scenario, analyzer):
        result = TrimCachingGen().solve(tight_scenario.instance)
        report = analyzer.report(result.placement)
        assert report.hit_ratio == pytest.approx(result.hit_ratio)

    def test_empty_placement_all_cloud(self, tight_scenario, analyzer):
        report = analyzer.report(tight_scenario.instance.new_placement())
        assert report.hit_ratio == 0.0
        assert math.isnan(report.mean_hit_latency_s)
        assert report.mean_latency_s == pytest.approx(report.mean_miss_latency_s)

    def test_cloud_is_slower_than_edge(self, tight_scenario, analyzer):
        result = TrimCachingGen().solve(tight_scenario.instance)
        report = analyzer.report(result.placement)
        if report.hit_ratio > 0 and report.hit_ratio < 1:
            assert report.mean_miss_latency_s > report.mean_hit_latency_s

    def test_better_placement_lowers_latency(self, tight_scenario, analyzer):
        good = TrimCachingGen().solve(tight_scenario.instance)
        empty = tight_scenario.instance.new_placement()
        assert (
            analyzer.report(good.placement).mean_latency_s
            < analyzer.report(empty).mean_latency_s
        )

    def test_deadline_satisfaction_at_least_hit_ratio(
        self, tight_scenario, analyzer
    ):
        """Cloud delivery may still satisfy loose deadlines."""
        result = TrimCachingGen().solve(tight_scenario.instance)
        report = analyzer.report(result.placement)
        assert report.deadline_satisfaction >= report.hit_ratio - 1e-9

    def test_faster_cloud_helps_satisfaction(self, tight_scenario):
        result = TrimCachingGen().solve(tight_scenario.instance)
        slow = LatencyAnalyzer(tight_scenario, cloud_rate_bps=10e6).report(
            result.placement
        )
        fast = LatencyAnalyzer(tight_scenario, cloud_rate_bps=10e9).report(
            result.placement
        )
        assert fast.deadline_satisfaction >= slow.deadline_satisfaction
        assert fast.mean_latency_s <= slow.mean_latency_s

    def test_validation(self, tight_scenario):
        with pytest.raises(ConfigurationError):
            LatencyAnalyzer(tight_scenario, cloud_rate_bps=0)
        with pytest.raises(ConfigurationError):
            LatencyAnalyzer(tight_scenario, cloud_extra_delay_s=-1)
