"""Tests for the Fig.-7 mobility study."""

import numpy as np
import pytest

from repro.core.gen import TrimCachingGen
from repro.sim.mobility_eval import MobilityStudy, MobilityTrace


class TestMobilityStudy:
    def test_trace_shape(self, small_scenario):
        result = TrimCachingGen().solve(small_scenario.instance)
        study = MobilityStudy(small_scenario, sample_every=6)
        trace = study.run(result.placement, horizon_s=300.0, seed=0)
        assert trace.times_s[0] == 0.0
        assert trace.times_s[-1] == pytest.approx(300.0)
        assert len(trace.times_s) == len(trace.hit_ratios)
        assert ((0.0 <= trace.hit_ratios) & (trace.hit_ratios <= 1.0)).all()

    def test_initial_matches_static_evaluation(self, small_scenario):
        result = TrimCachingGen().solve(small_scenario.instance)
        study = MobilityStudy(small_scenario)
        trace = study.run(result.placement, horizon_s=60.0, seed=0)
        assert trace.initial == pytest.approx(result.hit_ratio)

    def test_reproducible(self, small_scenario):
        result = TrimCachingGen().solve(small_scenario.instance)
        study = MobilityStudy(small_scenario, sample_every=6)
        a = study.run(result.placement, horizon_s=120.0, seed=5)
        b = study.run(result.placement, horizon_s=120.0, seed=5)
        assert a.hit_ratios == pytest.approx(b.hit_ratios)

    def test_zero_horizon(self, small_scenario):
        result = TrimCachingGen().solve(small_scenario.instance)
        study = MobilityStudy(small_scenario)
        trace = study.run(result.placement, horizon_s=0.0, seed=0)
        assert len(trace.times_s) == 1

    def test_validation(self, small_scenario):
        with pytest.raises(ValueError):
            MobilityStudy(small_scenario, sample_every=0)
        study = MobilityStudy(small_scenario)
        result = TrimCachingGen().solve(small_scenario.instance)
        with pytest.raises(ValueError):
            study.run(result.placement, horizon_s=-1.0)


class TestMobilityTrace:
    def test_degradation(self):
        trace = MobilityTrace(
            times_s=np.array([0.0, 60.0]), hit_ratios=np.array([0.8, 0.76])
        )
        assert trace.degradation == pytest.approx(0.05)
        assert trace.initial == 0.8
        assert trace.final == 0.76

    def test_zero_initial(self):
        trace = MobilityTrace(
            times_s=np.array([0.0, 60.0]), hit_ratios=np.array([0.0, 0.0])
        )
        assert trace.degradation == 0.0
