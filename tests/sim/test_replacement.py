"""Tests for the threshold-triggered re-placement loop (§IV-A extension)."""

import numpy as np
import pytest

from repro.core.gen import TrimCachingGen
from repro.core.placement import Placement
from repro.errors import ConfigurationError
from repro.sim.replacement import (
    ReplacementPolicy,
    ReplacementTrace,
    placement_delta_bytes,
)


class TestPlacementDelta:
    def test_no_change_costs_nothing(self, small_scenario):
        placement = TrimCachingGen().solve(small_scenario.instance).placement
        assert placement_delta_bytes(small_scenario, placement, placement) == 0

    def test_eviction_is_free(self, small_scenario):
        full = TrimCachingGen().solve(small_scenario.instance).placement
        empty = small_scenario.instance.new_placement()
        assert placement_delta_bytes(small_scenario, full, empty) == 0

    def test_cold_start_costs_dedup_size(self, small_scenario):
        instance = small_scenario.instance
        empty = instance.new_placement()
        target = instance.new_placement()
        target.add(0, 0)
        target.add(0, 1)
        expected = instance.dedup_storage([0, 1])
        assert placement_delta_bytes(small_scenario, empty, target) == expected

    def test_shared_blocks_not_reshipped(self, small_scenario):
        """Adding a sibling model costs only its specific blocks."""
        instance = small_scenario.instance
        # Find two models sharing blocks.
        pair = None
        for a in range(instance.num_models):
            for b in range(a + 1, instance.num_models):
                if instance.model_blocks[a] & instance.model_blocks[b]:
                    pair = (a, b)
                    break
            if pair:
                break
        assert pair is not None, "special-case library must share blocks"
        a, b = pair
        old = instance.new_placement()
        old.add(0, a)
        new = old.copy()
        new.add(0, b)
        delta = placement_delta_bytes(small_scenario, old, new)
        assert delta < int(instance.model_sizes[b])
        assert delta == instance.marginal_storage(b, instance.model_blocks[a])


class TestReplacementPolicy:
    def test_zero_threshold_never_replaces(self, small_scenario):
        policy = ReplacementPolicy(
            small_scenario, TrimCachingGen(), threshold=0.0, check_every=6
        )
        trace = policy.run(horizon_s=600.0, seed=0)
        assert trace.num_replacements == 0
        assert trace.total_bytes_shipped == 0

    def test_aggressive_threshold_replaces(self, tight_scenario):
        """threshold=1.0 fires on any degradation below the reference."""
        policy = ReplacementPolicy(
            tight_scenario, TrimCachingGen(), threshold=1.0, check_every=6
        )
        trace = policy.run(horizon_s=1800.0, seed=0)
        # With users moving, some check must see current < reference.
        assert trace.num_replacements >= 1
        for event in trace.events:
            assert event.hit_ratio_after >= event.hit_ratio_before - 1e-9
            assert event.bytes_shipped >= 0

    def test_replacement_improves_time_average(self, tight_scenario):
        """Re-placing helps on average (single runs can fluctuate: a
        fresh placement is optimal *now* but may age worse than the old
        one would have, so this averages over several mobility seeds)."""
        def mean_over_seeds(threshold: float) -> float:
            values = []
            for seed in range(3):
                trace = ReplacementPolicy(
                    tight_scenario,
                    TrimCachingGen(),
                    threshold=threshold,
                    check_every=6,
                ).run(horizon_s=1800.0, seed=seed)
                values.append(trace.mean_hit_ratio)
            return float(np.mean(values))

        assert mean_over_seeds(1.0) >= mean_over_seeds(0.0) - 0.02

    def test_trace_shape(self, small_scenario):
        policy = ReplacementPolicy(
            small_scenario, TrimCachingGen(), threshold=0.9, check_every=6
        )
        trace = policy.run(horizon_s=300.0, seed=0)
        assert trace.times_s[0] == 0.0
        assert len(trace.times_s) == len(trace.hit_ratios)
        assert ((0 <= trace.hit_ratios) & (trace.hit_ratios <= 1)).all()

    def test_validation(self, small_scenario):
        with pytest.raises(ConfigurationError):
            ReplacementPolicy(small_scenario, TrimCachingGen(), threshold=1.5)
        with pytest.raises(ConfigurationError):
            ReplacementPolicy(small_scenario, TrimCachingGen(), check_every=0)
        policy = ReplacementPolicy(small_scenario, TrimCachingGen())
        with pytest.raises(ConfigurationError):
            policy.run(horizon_s=-1.0)


class TestReplacementTrace:
    def test_aggregates(self):
        from repro.sim.replacement import ReplacementEvent

        trace = ReplacementTrace(
            times_s=np.array([0.0, 60.0]),
            hit_ratios=np.array([0.8, 0.7]),
            events=[
                ReplacementEvent(60.0, 0.6, 0.8, 1000),
                ReplacementEvent(120.0, 0.5, 0.7, 2000),
            ],
        )
        assert trace.num_replacements == 2
        assert trace.total_bytes_shipped == 3000
        assert trace.mean_hit_ratio == pytest.approx(0.75)
