"""Tests for the discrete-event request simulator."""

import math

import numpy as np
import pytest

from repro.core.gen import TrimCachingGen
from repro.errors import ConfigurationError
from repro.sim.request_sim import RequestLog, RequestSimulator


@pytest.fixture(scope="module")
def solved(request):
    scenario = request.getfixturevalue("tight_scenario")
    return scenario, TrimCachingGen().solve(scenario.instance)


class TestEmpiricalConvergence:
    def test_converges_to_expected_hit_ratio(self, solved):
        """eq. (2) validation: the empirical hit ratio of an actual
        request stream approaches U(X)."""
        scenario, result = solved
        simulator = RequestSimulator(scenario, fading=False)
        log = simulator.run(result.placement, num_slots=4000, seed=0)
        assert log.num_requests > 1000
        assert log.hit_ratio == pytest.approx(result.hit_ratio, abs=0.04)

    def test_fading_reduces_or_perturbs_hits(self, solved):
        scenario, result = solved
        faded = RequestSimulator(scenario, fading=True).run(
            result.placement, num_slots=500, seed=1
        )
        assert 0.0 <= faded.hit_ratio <= 1.0

    def test_empty_placement_never_hits(self, solved):
        scenario, _ = solved
        log = RequestSimulator(scenario).run(
            scenario.instance.new_placement(), num_slots=200, seed=0
        )
        assert log.num_hits == 0
        assert log.hit_ratio == 0.0
        assert math.isnan(log.mean_hit_latency_s)


class TestLogContents:
    def test_latencies_below_deadlines(self, solved):
        scenario, result = solved
        log = RequestSimulator(scenario).run(result.placement, 500, seed=2)
        max_deadline = scenario.latency_model.deadlines.max()
        assert (log.latencies_s <= max_deadline + 1e-9).all()
        assert len(log.latencies_s) == log.num_hits

    def test_server_load_sums_to_hits(self, solved):
        scenario, result = solved
        log = RequestSimulator(scenario).run(result.placement, 500, seed=3)
        assert int(log.server_load.sum()) == log.num_hits
        assert 0 <= log.busiest_server() < scenario.num_servers

    def test_reproducible(self, solved):
        scenario, result = solved
        a = RequestSimulator(scenario).run(result.placement, 200, seed=9)
        b = RequestSimulator(scenario).run(result.placement, 200, seed=9)
        assert a.num_requests == b.num_requests
        assert a.num_hits == b.num_hits

    def test_activity_rate(self, solved):
        """Requests per slot per user tracks p_A = 0.5."""
        scenario, result = solved
        slots = 1000
        log = RequestSimulator(scenario).run(result.placement, slots, seed=4)
        expected = 0.5 * scenario.num_users * slots
        assert log.num_requests == pytest.approx(expected, rel=0.1)

    def test_validation(self, solved):
        scenario, result = solved
        with pytest.raises(ConfigurationError):
            RequestSimulator(scenario).run(result.placement, num_slots=0)
