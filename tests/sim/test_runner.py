"""Tests for the sweep runner and experiment results."""

import numpy as np
import pytest

from repro.core.gen import TrimCachingGen
from repro.core.independent import IndependentCaching
from repro.sim.config import ScenarioConfig
from repro.sim.runner import ExperimentResult, SweepRunner
from repro.utils.units import GB


@pytest.fixture(scope="module")
def small_sweep():
    base = ScenarioConfig(num_servers=2, num_users=5, num_models=6)
    runner = SweepRunner(
        base_config=base,
        algorithms={
            "Gen": TrimCachingGen(),
            "Independent": IndependentCaching(),
        },
        num_topologies=3,
        seed=0,
    )
    return runner.run(
        "test sweep",
        "Q (GB)",
        [0.1, 0.3],
        lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * GB)),
    )


class TestSweepRunner:
    def test_series_shapes(self, small_sweep):
        assert set(small_sweep.series) == {"Gen", "Independent"}
        for series in small_sweep.series.values():
            assert len(series.means) == 2
            assert (series.counts == 3).all()

    def test_hit_ratio_increases_with_capacity(self, small_sweep):
        means = small_sweep.mean_of("Gen")
        assert means[1] >= means[0]

    def test_runtimes_recorded(self, small_sweep):
        assert (small_sweep.runtimes["Gen"].counts == 3).all()
        assert (small_sweep.runtimes["Gen"].means >= 0).all()

    def test_table_rendering(self, small_sweep):
        table = small_sweep.to_table()
        assert "Q (GB)" in table
        assert "Gen (mean)" in table
        assert "test sweep" in table

    def test_metadata(self, small_sweep):
        assert small_sweep.metadata["num_topologies"] == 3

    def test_reproducible(self):
        base = ScenarioConfig(num_servers=2, num_users=4, num_models=6)

        def run_once():
            runner = SweepRunner(
                base, {"Gen": TrimCachingGen()}, num_topologies=2, seed=9
            )
            return runner.run(
                "x", "K", [4], lambda cfg, k: cfg.with_overrides(num_users=int(k))
            )

        assert run_once().mean_of("Gen") == pytest.approx(
            run_once().mean_of("Gen")
        )

    def test_monte_carlo_evaluation_mode(self):
        base = ScenarioConfig(num_servers=2, num_users=4, num_models=6)
        runner = SweepRunner(
            base,
            {"Gen": TrimCachingGen()},
            num_topologies=2,
            evaluation="monte_carlo",
            num_realizations=20,
            seed=0,
        )
        result = runner.run(
            "mc", "K", [4], lambda cfg, k: cfg.with_overrides(num_users=int(k))
        )
        assert 0.0 <= result.mean_of("Gen")[0] <= 1.0

    def test_validation(self):
        base = ScenarioConfig()
        with pytest.raises(ValueError):
            SweepRunner(base, {})
        with pytest.raises(ValueError):
            SweepRunner(base, {"Gen": TrimCachingGen()}, num_topologies=0)
        with pytest.raises(ValueError):
            SweepRunner(base, {"Gen": TrimCachingGen()}, evaluation="magic")
