"""Tests for the sweep runner and experiment results."""

import numpy as np
import pytest

from repro.core.gen import TrimCachingGen
from repro.core.independent import IndependentCaching
from repro.sim.config import ScenarioConfig
from repro.sim.runner import ExperimentResult, SweepRunner
from repro.utils.units import GB


@pytest.fixture(scope="module")
def small_sweep():
    base = ScenarioConfig(num_servers=2, num_users=5, num_models=6)
    runner = SweepRunner(
        base_config=base,
        algorithms={
            "Gen": TrimCachingGen(),
            "Independent": IndependentCaching(),
        },
        num_topologies=3,
        seed=0,
    )
    return runner.run(
        "test sweep",
        "Q (GB)",
        [0.1, 0.3],
        lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * GB)),
    )


class TestSweepRunner:
    def test_series_shapes(self, small_sweep):
        assert set(small_sweep.series) == {"Gen", "Independent"}
        for series in small_sweep.series.values():
            assert len(series.means) == 2
            assert (series.counts == 3).all()

    def test_hit_ratio_increases_with_capacity(self, small_sweep):
        means = small_sweep.mean_of("Gen")
        assert means[1] >= means[0]

    def test_runtimes_recorded(self, small_sweep):
        assert (small_sweep.runtimes["Gen"].counts == 3).all()
        assert (small_sweep.runtimes["Gen"].means >= 0).all()

    def test_table_rendering(self, small_sweep):
        table = small_sweep.to_table()
        assert "Q (GB)" in table
        assert "Gen (mean)" in table
        assert "test sweep" in table

    def test_metadata(self, small_sweep):
        assert small_sweep.metadata["num_topologies"] == 3

    def test_reproducible(self):
        base = ScenarioConfig(num_servers=2, num_users=4, num_models=6)

        def run_once():
            runner = SweepRunner(
                base, {"Gen": TrimCachingGen()}, num_topologies=2, seed=9
            )
            return runner.run(
                "x", "K", [4], lambda cfg, k: cfg.with_overrides(num_users=int(k))
            )

        assert run_once().mean_of("Gen") == pytest.approx(
            run_once().mean_of("Gen")
        )

    def test_monte_carlo_evaluation_mode(self):
        base = ScenarioConfig(num_servers=2, num_users=4, num_models=6)
        runner = SweepRunner(
            base,
            {"Gen": TrimCachingGen()},
            num_topologies=2,
            evaluation="monte_carlo",
            num_realizations=20,
            seed=0,
        )
        result = runner.run(
            "mc", "K", [4], lambda cfg, k: cfg.with_overrides(num_users=int(k))
        )
        assert 0.0 <= result.mean_of("Gen")[0] <= 1.0

    def test_validation(self):
        base = ScenarioConfig()
        with pytest.raises(ValueError):
            SweepRunner(base, {})
        with pytest.raises(ValueError):
            SweepRunner(base, {"Gen": TrimCachingGen()}, num_topologies=0)
        with pytest.raises(ValueError):
            SweepRunner(base, {"Gen": TrimCachingGen()}, evaluation="magic")
        with pytest.raises(ValueError):
            SweepRunner(base, {"Gen": TrimCachingGen()}, workers=0)
        with pytest.raises(ValueError):
            SweepRunner(base, {"Gen": TrimCachingGen()}, feasibility="csc")


class TestParallelDeterminism:
    """``workers=N`` must reproduce the serial series bit for bit."""

    @staticmethod
    def _run(workers: int, evaluation: str = "expected") -> ExperimentResult:
        from repro.core.spec import TrimCachingSpec

        base = ScenarioConfig(
            library_case="special",
            num_servers=3,
            num_users=10,
            num_models=9,
            requests_per_user=5,
        )
        runner = SweepRunner(
            base,
            {
                "Spec": TrimCachingSpec(epsilon=0.1),
                "Gen": TrimCachingGen(),
                "Independent": IndependentCaching(),
            },
            num_topologies=3,
            evaluation=evaluation,
            num_realizations=10,
            seed=5,
            workers=workers,
        )
        return runner.run(
            "determinism",
            "Q (GB)",
            [0.05, 0.1, 0.2],
            lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * GB)),
        )

    def test_workers4_bit_identical_series(self):
        serial = self._run(workers=1)
        parallel = self._run(workers=4)
        assert set(serial.series) == set(parallel.series)
        for algo in serial.series:
            assert (
                serial.series[algo].means == parallel.series[algo].means
            ).all()
            assert (
                serial.series[algo].stds == parallel.series[algo].stds
            ).all()
            assert (
                serial.series[algo].counts == parallel.series[algo].counts
            ).all()
        assert parallel.metadata["workers"] == 4

    def test_workers_exceeding_topologies(self):
        """More workers than topologies still aggregates correctly."""
        serial = self._run(workers=1)
        oversubscribed = self._run(workers=16)
        for algo in serial.series:
            assert (
                serial.series[algo].means == oversubscribed.series[algo].means
            ).all()

    def test_dense_feasibility_mode_matches(self):
        """The dense-instance pipeline scores the same series (the CSR is
        a representation change, not a behavioural one)."""
        base = ScenarioConfig(num_servers=2, num_users=6, num_models=6)
        algorithms = {"Gen": TrimCachingGen()}

        def run(feasibility):
            return SweepRunner(
                base,
                algorithms,
                num_topologies=2,
                seed=1,
                feasibility=feasibility,
            ).run(
                "mode",
                "Q (GB)",
                [0.1, 0.2],
                lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * GB)),
            )

        assert (
            run("sparse").mean_of("Gen") == run("dense").mean_of("Gen")
        ).all()
