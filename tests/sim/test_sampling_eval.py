"""Streaming and stratified-sampling evaluators."""

import numpy as np
import pytest

from repro.core.gen import TrimCachingGen
from repro.sim.config import ScenarioConfig
from repro.sim.evaluator import EvalSpec, PlacementEvaluator
from repro.sim.runner import SweepRunner
from repro.sim.scenario import build_scenario
from repro.utils.units import GB


@pytest.fixture(scope="module")
def solved():
    config = ScenarioConfig(
        num_users=60, num_servers=4, num_models=15, requests_per_user=6
    )
    scenario = build_scenario(config, seed=1)
    placement = TrimCachingGen().solve(scenario.instance).placement
    return scenario, placement


class TestStreamingEvaluation:
    @pytest.mark.parametrize("chunk_size", [1, 7, 60, 128])
    def test_matches_exact(self, solved, chunk_size):
        scenario, placement = solved
        evaluator = PlacementEvaluator(scenario)
        exact = evaluator.expected_hit_ratio(placement)
        stream = evaluator.streaming_expected_hit_ratio(
            placement, chunk_size=chunk_size
        )
        assert np.isclose(stream.hit_ratio, exact, rtol=1e-12)

    def test_per_user_stats_cover_population(self, solved):
        scenario, placement = solved
        stream = PlacementEvaluator(scenario).streaming_expected_hit_ratio(
            placement, chunk_size=13
        )
        assert stream.per_user.count == scenario.num_users
        assert 0.0 <= stream.per_user.minimum <= stream.per_user.maximum
        # Per-user hit mass is bounded by the unit row sum of demand
        # (up to float accumulation).
        assert stream.per_user.maximum <= 1.0 + 1e-9

    def test_default_chunk_from_config(self):
        config = ScenarioConfig(
            num_users=40,
            num_servers=3,
            num_models=10,
            rng_scheme="v2",
            chunk_size=9,
        )
        scenario = build_scenario(config, seed=4)
        placement = TrimCachingGen().solve(scenario.instance).placement
        evaluator = PlacementEvaluator(scenario)
        stream = evaluator.streaming_expected_hit_ratio(placement)
        assert np.isclose(
            stream.hit_ratio,
            evaluator.expected_hit_ratio(placement),
            rtol=1e-12,
        )

    def test_rejects_bad_chunk(self, solved):
        scenario, placement = solved
        with pytest.raises(ValueError, match="chunk_size"):
            PlacementEvaluator(scenario).streaming_expected_hit_ratio(
                placement, chunk_size=0
            )


class TestSampledEvaluation:
    def test_full_sample_is_exact_with_zero_ci(self, solved):
        scenario, placement = solved
        evaluator = PlacementEvaluator(scenario)
        spec = EvalSpec(sample_users=scenario.num_users, strata=4, seed=0)
        sampled = evaluator.sampled_hit_ratio(placement, spec)
        assert np.isclose(
            sampled.estimate, evaluator.expected_hit_ratio(placement), rtol=1e-12
        )
        assert sampled.ci_half_width == 0.0
        assert sampled.sample_size == scenario.num_users

    def test_subsample_ci_covers_exact_across_seeds(self):
        """The 95% CI should contain the exact value for most seeds."""
        base = ScenarioConfig()
        # Scale radio resources with the population (as bench_scale.py
        # does) so per-user shares stay at paper levels and the
        # feasibility set does not degenerate to empty.
        config = ScenarioConfig(
            num_users=400,
            num_servers=6,
            num_models=20,
            requests_per_user=8,
            total_bandwidth_hz=base.total_bandwidth_hz * 4.0,
            total_power_watts=base.total_power_watts * 4.0,
            rng_scheme="v2",
        )
        scenario = build_scenario(config, seed=2)
        placement = TrimCachingGen().solve(scenario.instance).placement
        evaluator = PlacementEvaluator(scenario)
        exact = evaluator.expected_hit_ratio(placement)
        covered = 0
        seeds = range(30)
        for seed in seeds:
            spec = EvalSpec(sample_users=120, strata=4, seed=seed)
            sampled = evaluator.sampled_hit_ratio(placement, spec)
            assert sampled.sample_size < scenario.num_users
            assert sampled.ci_half_width > 0.0
            covered += sampled.contains(exact)
        # Nominal coverage is 95%; leave slack for the normal
        # approximation at this sample size.
        assert covered >= 25, f"CI covered exact in only {covered}/30 seeds"

    def test_estimates_are_seed_deterministic(self, solved):
        scenario, placement = solved
        evaluator = PlacementEvaluator(scenario)
        spec = EvalSpec(sample_users=20, strata=4, seed=7)
        first = evaluator.sampled_hit_ratio(placement, spec)
        second = evaluator.sampled_hit_ratio(placement, spec)
        assert first.estimate == second.estimate
        assert first.ci_half_width == second.ci_half_width

    def test_bounds_bracket_estimate(self, solved):
        scenario, placement = solved
        sampled = PlacementEvaluator(scenario).sampled_hit_ratio(
            placement, EvalSpec(sample_users=20, strata=2, seed=3)
        )
        assert sampled.lower <= sampled.estimate <= sampled.upper
        assert sampled.contains(sampled.estimate)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="strata"):
            EvalSpec(sample_users=10, strata=0)
        with pytest.raises(ValueError, match="at least 2 per stratum"):
            EvalSpec(sample_users=5, strata=4)
        with pytest.raises(ValueError, match="z"):
            EvalSpec(sample_users=10, strata=2, z=0.0)

    def test_too_many_strata_for_population(self, solved):
        scenario, placement = solved
        spec = EvalSpec(sample_users=scenario.num_users * 2, strata=scenario.num_users)
        with pytest.raises(ValueError, match="cannot allocate"):
            PlacementEvaluator(scenario).sampled_hit_ratio(placement, spec)


class TestSampledSweep:
    def test_sampled_sweep_runs(self):
        base = ScenarioConfig(
            num_servers=2, num_users=40, num_models=8, rng_scheme="v2"
        )
        runner = SweepRunner(
            base,
            {"Gen": TrimCachingGen()},
            num_topologies=2,
            evaluation="sampled",
            sample_users=16,
            seed=0,
        )
        result = runner.run(
            "sampled sweep",
            "Q (GB)",
            [0.1, 0.3],
            lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * GB)),
        )
        means = result.mean_of("Gen")
        assert len(means) == 2
        assert all(0.0 <= m <= 1.0 for m in means)

    def test_sampled_requires_sample_users(self):
        base = ScenarioConfig(num_servers=2, num_users=10, num_models=6)
        with pytest.raises(ValueError, match="sample_users"):
            SweepRunner(
                base, {"Gen": TrimCachingGen()}, evaluation="sampled", seed=0
            )

    def test_sample_users_requires_sampled_evaluation(self):
        base = ScenarioConfig(num_servers=2, num_users=10, num_models=6)
        with pytest.raises(ValueError, match="sampled"):
            SweepRunner(
                base,
                {"Gen": TrimCachingGen()},
                evaluation="expected",
                sample_users=8,
                seed=0,
            )
