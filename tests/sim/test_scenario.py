"""Tests for scenario assembly."""

import numpy as np
import pytest

from repro.models.generators import SpecialCaseConfig, build_special_case_library
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_library, build_scenario


class TestBuildScenario:
    def test_shapes(self, small_scenario):
        scenario = small_scenario
        assert scenario.num_servers == 3
        assert scenario.num_users == 8
        assert scenario.num_models == 9
        assert scenario.demand.shape == (8, 9)
        assert scenario.instance.feasible.shape == (3, 8, 9)

    def test_deterministic_given_seed(self):
        config = ScenarioConfig(num_servers=2, num_users=4, num_models=6)
        a = build_scenario(config, seed=3)
        b = build_scenario(config, seed=3)
        assert (a.demand == b.demand).all()
        assert (a.topology.distances == b.topology.distances).all()
        assert (a.instance.feasible == b.instance.feasible).all()

    def test_different_seeds_differ(self):
        config = ScenarioConfig(num_servers=2, num_users=4, num_models=6)
        a = build_scenario(config, seed=3)
        b = build_scenario(config, seed=4)
        assert not (a.topology.distances == b.topology.distances).all()

    def test_qos_ranges_respected(self, small_scenario):
        config = small_scenario.config
        for user in small_scenario.topology.users:
            assert (user.deadlines_s >= config.deadline_range_s[0]).all()
            assert (user.deadlines_s <= config.deadline_range_s[1]).all()
            assert (
                user.inference_latency_s >= config.inference_latency_range_s[0]
            ).all()

    def test_demand_rows_normalised(self, small_scenario):
        assert small_scenario.demand.sum(axis=1) == pytest.approx(
            np.ones(small_scenario.num_users)
        )

    def test_capacities_uniform(self, small_scenario):
        assert (
            small_scenario.instance.capacities
            == small_scenario.config.storage_bytes
        ).all()

    def test_heterogeneous_capacities(self):
        from repro.errors import ConfigurationError

        config = ScenarioConfig(
            num_servers=3,
            num_users=4,
            num_models=6,
            storage_bytes_per_server=(10**8, 2 * 10**8, 3 * 10**8),
        )
        scenario = build_scenario(config, seed=0)
        assert scenario.instance.capacities.tolist() == [
            10**8,
            2 * 10**8,
            3 * 10**8,
        ]
        assert [s.storage_bytes for s in scenario.topology.servers] == [
            10**8,
            2 * 10**8,
            3 * 10**8,
        ]
        with pytest.raises(ConfigurationError):
            ScenarioConfig(
                num_servers=2, storage_bytes_per_server=(10**8,)
            )

    def test_library_reuse(self):
        config = ScenarioConfig(num_servers=2, num_users=4, num_models=6)
        library = build_special_case_library(SpecialCaseConfig(num_models=6), 0)
        a = build_scenario(config, seed=1, library=library)
        b = build_scenario(config, seed=2, library=library)
        assert a.library is library
        assert b.library is library
        # Geometry still varies.
        assert not (a.topology.distances == b.topology.distances).all()

    def test_supplied_library_overrides_model_count(self):
        config = ScenarioConfig(num_servers=2, num_users=4, num_models=99)
        library = build_special_case_library(SpecialCaseConfig(num_models=6), 0)
        scenario = build_scenario(config, seed=1, library=library)
        assert scenario.num_models == 6
        assert scenario.config.num_models == 6


class TestBuildLibrary:
    def test_special(self):
        config = ScenarioConfig(num_models=9, library_case="special")
        library = build_library(config, seed=0)
        assert library.num_models == 9

    def test_general(self):
        config = ScenarioConfig(num_models=12, library_case="general")
        library = build_library(config, seed=0)
        assert library.num_models == 12


class TestRebuildInstance:
    def test_moved_users_change_feasibility(self, small_scenario):
        from repro.network.geometry import Point

        far_positions = [Point(10_000 + i, 10_000) for i in range(8)]
        topology = small_scenario.topology.with_user_positions(far_positions)
        instance = small_scenario.rebuild_instance(topology)
        # Users out of everyone's coverage: nothing feasible.
        assert not instance.feasible.any()
        # Demand and capacities carry over.
        assert (instance.demand == small_scenario.demand).all()
        assert (instance.capacities == small_scenario.instance.capacities).all()
