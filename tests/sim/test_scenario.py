"""Tests for scenario assembly."""

import numpy as np
import pytest

from repro.models.generators import SpecialCaseConfig, build_special_case_library
from repro.sim.config import ScenarioConfig
from repro.sim.scenario import build_library, build_scenario


class TestBuildScenario:
    def test_shapes(self, small_scenario):
        scenario = small_scenario
        assert scenario.num_servers == 3
        assert scenario.num_users == 8
        assert scenario.num_models == 9
        assert scenario.demand.shape == (8, 9)
        assert scenario.instance.feasible.shape == (3, 8, 9)

    def test_deterministic_given_seed(self):
        config = ScenarioConfig(num_servers=2, num_users=4, num_models=6)
        a = build_scenario(config, seed=3)
        b = build_scenario(config, seed=3)
        assert (a.demand == b.demand).all()
        assert (a.topology.distances == b.topology.distances).all()
        assert (a.instance.feasible == b.instance.feasible).all()

    def test_different_seeds_differ(self):
        config = ScenarioConfig(num_servers=2, num_users=4, num_models=6)
        a = build_scenario(config, seed=3)
        b = build_scenario(config, seed=4)
        assert not (a.topology.distances == b.topology.distances).all()

    def test_qos_ranges_respected(self, small_scenario):
        config = small_scenario.config
        for user in small_scenario.topology.users:
            assert (user.deadlines_s >= config.deadline_range_s[0]).all()
            assert (user.deadlines_s <= config.deadline_range_s[1]).all()
            assert (
                user.inference_latency_s >= config.inference_latency_range_s[0]
            ).all()

    def test_demand_rows_normalised(self, small_scenario):
        assert small_scenario.demand.sum(axis=1) == pytest.approx(
            np.ones(small_scenario.num_users)
        )

    def test_capacities_uniform(self, small_scenario):
        assert (
            small_scenario.instance.capacities
            == small_scenario.config.storage_bytes
        ).all()

    def test_heterogeneous_capacities(self):
        from repro.errors import ConfigurationError

        config = ScenarioConfig(
            num_servers=3,
            num_users=4,
            num_models=6,
            storage_bytes_per_server=(10**8, 2 * 10**8, 3 * 10**8),
        )
        scenario = build_scenario(config, seed=0)
        assert scenario.instance.capacities.tolist() == [
            10**8,
            2 * 10**8,
            3 * 10**8,
        ]
        assert [s.storage_bytes for s in scenario.topology.servers] == [
            10**8,
            2 * 10**8,
            3 * 10**8,
        ]
        with pytest.raises(ConfigurationError):
            ScenarioConfig(
                num_servers=2, storage_bytes_per_server=(10**8,)
            )

    def test_library_reuse(self):
        config = ScenarioConfig(num_servers=2, num_users=4, num_models=6)
        library = build_special_case_library(SpecialCaseConfig(num_models=6), 0)
        a = build_scenario(config, seed=1, library=library)
        b = build_scenario(config, seed=2, library=library)
        assert a.library is library
        assert b.library is library
        # Geometry still varies.
        assert not (a.topology.distances == b.topology.distances).all()

    def test_supplied_library_overrides_model_count(self):
        config = ScenarioConfig(num_servers=2, num_users=4, num_models=99)
        library = build_special_case_library(SpecialCaseConfig(num_models=6), 0)
        scenario = build_scenario(config, seed=1, library=library)
        assert scenario.num_models == 6
        assert scenario.config.num_models == 6


class TestBuildLibrary:
    def test_special(self):
        config = ScenarioConfig(num_models=9, library_case="special")
        library = build_library(config, seed=0)
        assert library.num_models == 9

    def test_general(self):
        config = ScenarioConfig(num_models=12, library_case="general")
        library = build_library(config, seed=0)
        assert library.num_models == 12


class TestRebuildInstance:
    def test_moved_users_change_feasibility(self, small_scenario):
        from repro.network.geometry import Point

        far_positions = [Point(10_000 + i, 10_000) for i in range(8)]
        topology = small_scenario.topology.with_user_positions(far_positions)
        instance = small_scenario.rebuild_instance(topology)
        # Users out of everyone's coverage: nothing feasible.
        assert not instance.feasible.any()
        # Demand and capacities carry over.
        assert (instance.demand == small_scenario.demand).all()
        assert (instance.capacities == small_scenario.instance.capacities).all()


class TestRngSchemeV2:
    """``rng_scheme="v2"``: batched construction, same distributions.

    v1 stays the seed's draw order verbatim (bit-identity asserted by
    the reference-equivalence suite); v2 is statistically cross-checked
    here because its stream layout intentionally differs.
    """

    def _configs(self, **kwargs):
        base = dict(num_servers=2, num_users=6, num_models=8)
        base.update(kwargs)
        return (
            ScenarioConfig(rng_scheme="v1", **base),
            ScenarioConfig(rng_scheme="v2", **base),
        )

    def test_v1_explicit_equals_default(self):
        config = ScenarioConfig(num_servers=2, num_users=4, num_models=6)
        explicit = build_scenario(
            config.with_overrides(rng_scheme="v1"), seed=3
        )
        default = build_scenario(config, seed=3)
        assert (explicit.demand == default.demand).all()
        for a, b in zip(
            explicit.topology.users, default.topology.users
        ):
            assert (a.deadlines_s == b.deadlines_s).all()
            assert (a.inference_latency_s == b.inference_latency_s).all()

    def test_v2_deterministic_given_seed(self):
        _, config = self._configs()
        a = build_scenario(config, seed=5)
        b = build_scenario(config, seed=5)
        assert (a.demand == b.demand).all()
        assert (a.instance.feasible == b.instance.feasible).all()

    def test_v2_shares_seed_independent_randomness_with_v1(self):
        """Positions and the library don't go through the versioned
        draws: v1 and v2 scenarios at the same seed agree on them."""
        v1, v2 = (build_scenario(c, seed=5) for c in self._configs())
        assert (v1.topology.distances == v2.topology.distances).all()
        assert [v1.library.model_size(i) for i in v1.library.model_ids] == [
            v2.library.model_size(i) for i in v2.library.model_ids
        ]

    def test_v2_demand_rows_normalised(self):
        _, config = self._configs()
        scenario = build_scenario(config, seed=7)
        assert scenario.demand.sum(axis=1) == pytest.approx(
            np.ones(config.num_users)
        )

    def test_v2_subset_sizes_exact(self):
        _, config = self._configs(requests_per_user=3, num_models=12)
        scenario = build_scenario(config, seed=7)
        assert ((scenario.demand > 0).sum(axis=1) == 3).all()

    def test_v2_rows_carry_the_same_zipf_weights_as_v1(self):
        """Each demand row's nonzero values are exactly the compact Zipf
        weights — identical support to v1, only placed differently."""
        v1_config, v2_config = self._configs(
            requests_per_user=4, num_models=16
        )
        v1 = build_scenario(v1_config, seed=9)
        v2 = build_scenario(v2_config, seed=9)
        for row in range(v2_config.num_users):
            v2_weights = np.sort(v2.demand[row][v2.demand[row] > 0])
            v1_weights = np.sort(v1.demand[row][v1.demand[row] > 0])
            assert v2_weights == pytest.approx(v1_weights)

    def test_v2_qos_ranges_respected(self):
        _, config = self._configs()
        scenario = build_scenario(config, seed=11)
        for user in scenario.topology.users:
            assert (user.deadlines_s >= config.deadline_range_s[0]).all()
            assert (user.deadlines_s <= config.deadline_range_s[1]).all()
            assert (
                user.inference_latency_s
                >= config.inference_latency_range_s[0]
            ).all()
            assert (
                user.inference_latency_s
                <= config.inference_latency_range_s[1]
            ).all()

    def test_v2_subset_choice_is_uniform(self):
        """Marginal statistics: over many users each model is chosen
        with probability subset/I (±5 σ of the binomial)."""
        config = ScenarioConfig(
            num_servers=1,
            num_users=600,
            num_models=10,
            requests_per_user=3,
            rng_scheme="v2",
        )
        scenario = build_scenario(config, seed=13)
        counts = (scenario.demand > 0).sum(axis=0)
        expected = 600 * 3 / 10
        sigma = np.sqrt(600 * 0.3 * 0.7)
        assert (np.abs(counts - expected) < 5 * sigma).all()

    def test_v2_qos_marginals_match_v1(self):
        """Mean/extremes of the batched QoS draws sit where v1's do."""
        kwargs = dict(num_servers=1, num_users=400, num_models=20)
        v1, v2 = (
            build_scenario(c, seed=17) for c in self._configs(**kwargs)
        )
        for scenario in (v1, v2):
            deadlines = np.stack(
                [u.deadlines_s for u in scenario.topology.users]
            )
            assert deadlines.mean() == pytest.approx(0.75, abs=0.01)
            assert deadlines.min() >= 0.5 and deadlines.max() <= 1.0

    def test_v2_full_library_demand(self):
        # requests_per_user=None: the batched path is the pure
        # popularity matrix.
        _, config = self._configs(requests_per_user=None)
        scenario = build_scenario(config, seed=19)
        assert (scenario.demand > 0).all()
        assert scenario.demand.sum(axis=1) == pytest.approx(
            np.ones(config.num_users)
        )
