"""Tests for placement / experiment serialization."""

import json

import pytest

from repro.core.gen import TrimCachingGen
from repro.core.placement import Placement
from repro.errors import PlacementError
from repro.sim.serialization import (
    experiment_to_csv,
    experiment_to_dict,
    experiment_to_json,
    placement_from_json,
    placement_to_json,
)


class TestPlacementRoundTrip:
    def test_round_trip(self, tight_scenario):
        placement = TrimCachingGen().solve(tight_scenario.instance).placement
        restored = placement_from_json(placement_to_json(placement))
        assert restored == placement

    def test_empty_placement(self):
        placement = Placement.from_server_sets(3, 4, {})
        restored = placement_from_json(placement_to_json(placement))
        assert restored == placement
        assert restored.num_servers == 3
        assert restored.num_models == 4

    def test_json_is_stable(self, tight_scenario):
        placement = TrimCachingGen().solve(tight_scenario.instance).placement
        assert placement_to_json(placement) == placement_to_json(placement)

    def test_bad_format_rejected(self):
        with pytest.raises(PlacementError):
            placement_from_json(json.dumps({"format": "something-else"}))

    def test_malformed_payload_rejected(self):
        with pytest.raises(PlacementError):
            placement_from_json(
                json.dumps({"format": "trimcaching-placement-v1"})
            )

    def test_invalid_json_rejected(self):
        with pytest.raises(PlacementError):
            placement_from_json("{not json")


@pytest.fixture(scope="module")
def small_result():
    from repro.core.independent import IndependentCaching
    from repro.sim.config import ScenarioConfig
    from repro.sim.runner import SweepRunner
    from repro.utils.units import GB

    runner = SweepRunner(
        ScenarioConfig(num_servers=2, num_users=4, num_models=6),
        {"Gen": TrimCachingGen(), "Independent": IndependentCaching()},
        num_topologies=2,
        seed=0,
    )
    return runner.run(
        "ser test",
        "Q (GB)",
        [0.1, 0.2],
        lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * GB)),
    )


class TestExperimentExport:
    def test_dict_structure(self, small_result):
        payload = experiment_to_dict(small_result)
        assert payload["name"] == "ser test"
        assert payload["x_values"] == [0.1, 0.2]
        assert set(payload["series"]) == {"Gen", "Independent"}
        assert len(payload["series"]["Gen"]["mean"]) == 2
        assert payload["metadata"]["num_topologies"] == 2

    def test_json_parses(self, small_result):
        payload = json.loads(experiment_to_json(small_result))
        assert payload["x_label"] == "Q (GB)"

    def test_csv_shape(self, small_result):
        csv_text = experiment_to_csv(small_result)
        lines = [line for line in csv_text.strip().splitlines()]
        assert len(lines) == 3  # header + 2 sweep points
        assert lines[0].startswith("Q (GB),Gen mean,Gen std")
        assert lines[1].startswith("0.1,")
