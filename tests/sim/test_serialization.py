"""Tests for placement / experiment serialization."""

import json

import pytest

from repro.core.gen import TrimCachingGen
from repro.core.placement import Placement
from repro.errors import PlacementError
from repro.sim.serialization import (
    experiment_to_csv,
    experiment_to_dict,
    experiment_to_json,
    placement_from_json,
    placement_to_json,
)


class TestPlacementRoundTrip:
    def test_round_trip(self, tight_scenario):
        placement = TrimCachingGen().solve(tight_scenario.instance).placement
        restored = placement_from_json(placement_to_json(placement))
        assert restored == placement

    def test_empty_placement(self):
        placement = Placement.from_server_sets(3, 4, {})
        restored = placement_from_json(placement_to_json(placement))
        assert restored == placement
        assert restored.num_servers == 3
        assert restored.num_models == 4

    def test_json_is_stable(self, tight_scenario):
        placement = TrimCachingGen().solve(tight_scenario.instance).placement
        assert placement_to_json(placement) == placement_to_json(placement)

    def test_bad_format_rejected(self):
        with pytest.raises(PlacementError):
            placement_from_json(json.dumps({"format": "something-else"}))

    def test_malformed_payload_rejected(self):
        with pytest.raises(PlacementError):
            placement_from_json(
                json.dumps({"format": "trimcaching-placement-v1"})
            )

    def test_invalid_json_rejected(self):
        with pytest.raises(PlacementError):
            placement_from_json("{not json")


@pytest.fixture(scope="module")
def small_result():
    from repro.core.independent import IndependentCaching
    from repro.sim.config import ScenarioConfig
    from repro.sim.runner import SweepRunner
    from repro.utils.units import GB

    runner = SweepRunner(
        ScenarioConfig(num_servers=2, num_users=4, num_models=6),
        {"Gen": TrimCachingGen(), "Independent": IndependentCaching()},
        num_topologies=2,
        seed=0,
    )
    return runner.run(
        "ser test",
        "Q (GB)",
        [0.1, 0.2],
        lambda cfg, q: cfg.with_overrides(storage_bytes=int(q * GB)),
    )


class TestExperimentExport:
    def test_dict_structure(self, small_result):
        payload = experiment_to_dict(small_result)
        assert payload["name"] == "ser test"
        assert payload["x_values"] == [0.1, 0.2]
        assert set(payload["series"]) == {"Gen", "Independent"}
        assert len(payload["series"]["Gen"]["mean"]) == 2
        assert payload["metadata"]["num_topologies"] == 2

    def test_json_parses(self, small_result):
        payload = json.loads(experiment_to_json(small_result))
        assert payload["x_label"] == "Q (GB)"

    def test_csv_shape(self, small_result):
        csv_text = experiment_to_csv(small_result)
        lines = [line for line in csv_text.strip().splitlines()]
        assert len(lines) == 3  # header + 2 sweep points
        assert lines[0].startswith("Q (GB),Gen mean,Gen std")
        assert lines[1].startswith("0.1,")


class TestExperimentRoundTrip:
    def test_from_json_rebuilds_series(self, small_result):
        from repro.sim.serialization import experiment_from_json

        restored = experiment_from_json(experiment_to_json(small_result))
        assert restored.name == small_result.name
        assert restored.x_label == small_result.x_label
        assert list(restored.series) == list(small_result.series)
        for algo in small_result.series:
            assert (
                restored.series[algo].means == small_result.series[algo].means
            ).all()
            assert (
                restored.series[algo].stds == small_result.series[algo].stds
            ).all()
            assert (
                restored.series[algo].counts == small_result.series[algo].counts
            ).all()

    def test_to_json_from_json_to_json_is_identity(self, small_result):
        from repro.sim.serialization import experiment_from_json

        text = experiment_to_json(small_result)
        assert experiment_to_json(experiment_from_json(text)) == text

    def test_extrema_travel_with_the_series(self, small_result):
        """min/max are serialised and restored — no NaN placeholder."""
        from repro.sim.serialization import experiment_from_json

        payload = experiment_to_dict(small_result)
        for moments in payload["series"].values():
            assert "min" in moments and "max" in moments
        restored = experiment_from_json(experiment_to_json(small_result))
        for algo in small_result.series:
            assert (
                restored.series[algo].minima
                == small_result.series[algo].minima
            ).all()
            assert (
                restored.series[algo].maxima
                == small_result.series[algo].maxima
            ).all()

    def test_legacy_payload_without_extrema_restores_nan(self, small_result):
        """Pre-extrema payloads still load; extrema report NaN."""
        import math

        from repro.sim.serialization import experiment_from_json

        payload = json.loads(experiment_to_json(small_result))
        for moments in payload["series"].values():
            moments.pop("min")
            moments.pop("max")
        restored = experiment_from_json(json.dumps(payload))
        stats = restored.series["Gen"].stat_at(0)
        assert math.isnan(stats.minimum)
        assert math.isnan(stats.maximum)

    def test_non_finite_extrema_serialise_as_null(self):
        """NaN/inf extrema become null — output stays strict JSON."""
        import math

        from repro.sim.runner import ExperimentResult
        from repro.sim.serialization import experiment_from_json
        from repro.utils.stats import SeriesStats

        # A legacy-restored series (NaN placeholders) and an empty one
        # (inf extrema) both re-serialise without bare NaN/Infinity.
        legacy = SeriesStats.from_moments([1.0], [0.5], [0.1], [3])
        result = ExperimentResult(
            name="n", x_label="x", x_values=[1.0],
            series={"a": legacy, "b": SeriesStats([1.0])},
        )
        text = experiment_to_json(result)
        assert "NaN" not in text and "Infinity" not in text
        json.loads(text, parse_constant=lambda _: pytest.fail("non-RFC token"))
        # Round trip is still the identity, with the placeholders back.
        restored = experiment_from_json(text)
        assert math.isnan(restored.series["a"].stat_at(0).minimum)
        assert restored.series["b"].stat_at(0).minimum == math.inf
        assert experiment_to_json(restored) == text

    def test_property_round_trip_identity(self):
        """to_json -> from_json -> to_json is the identity for arbitrary
        accumulated series (property-based)."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.sim.runner import ExperimentResult
        from repro.sim.serialization import experiment_from_json
        from repro.utils.stats import SeriesStats

        @settings(max_examples=50, deadline=None)
        @given(
            x_values=st.lists(
                st.floats(
                    min_value=0.01,
                    max_value=100,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=1,
                max_size=4,
            ),
            runs=st.integers(min_value=1, max_value=5),
            data=st.data(),
        )
        def check(x_values, runs, data):
            series = SeriesStats(x_values)
            sample = st.floats(
                min_value=0.0, max_value=1.0, allow_nan=False
            )
            for _ in range(runs):
                series.add_run(
                    [data.draw(sample) for _ in x_values]
                )
            result = ExperimentResult(
                name="prop",
                x_label="x",
                x_values=x_values,
                series={"algo": series},
                metadata={"seed": 0},
            )
            text = experiment_to_json(result)
            assert experiment_to_json(experiment_from_json(text)) == text

        check()

    def test_bad_format_rejected(self):
        from repro.errors import ReproError
        from repro.sim.serialization import experiment_from_json

        with pytest.raises(ReproError, match="format"):
            experiment_from_json(json.dumps({"format": "nope"}))

    def test_invalid_json_rejected(self):
        from repro.errors import ReproError
        from repro.sim.serialization import experiment_from_json

        with pytest.raises(ReproError, match="invalid experiment JSON"):
            experiment_from_json("{not json")

    def test_malformed_payload_rejected(self):
        from repro.errors import ReproError
        from repro.sim.serialization import experiment_from_dict

        with pytest.raises(ReproError, match="malformed"):
            experiment_from_dict({"format": "trimcaching-experiment-v1"})


class TestResultSetRoundTrip:
    def test_plan_travels_with_the_result(self):
        from repro.api import ExperimentPlan, SolverSpec, SweepSpec, run_plan
        from repro.sim.serialization import (
            result_set_from_json,
            result_set_to_json,
        )

        plan = ExperimentPlan(
            name="ser plan",
            sweep=SweepSpec("capacity", (0.1, 0.2)),
            solvers=(SolverSpec("gen"),),
            base={"num_servers": 2, "num_users": 4, "num_models": 6},
            num_topologies=1,
        )
        result = run_plan(plan)
        text = result_set_to_json(result)
        restored = result_set_from_json(text)
        assert restored.plan == plan
        assert result_set_to_json(restored) == text

    def test_plain_experiment_serialises_without_plan(self, small_result):
        from repro.sim.serialization import (
            result_set_from_json,
            result_set_to_json,
        )

        restored = result_set_from_json(result_set_to_json(small_result))
        assert restored.plan is None
        assert restored.name == small_result.name

    def test_bad_format_rejected(self):
        from repro.errors import ReproError
        from repro.sim.serialization import result_set_from_json

        with pytest.raises(ReproError, match="format"):
            result_set_from_json(json.dumps({"format": "nope"}))
