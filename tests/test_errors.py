"""Tests for the exception hierarchy and the SolverResult type."""

import pytest

from repro.core.placement import Placement
from repro.core.result import SolverResult
from repro.errors import (
    ConfigurationError,
    InfeasibleError,
    LibraryError,
    PlacementError,
    ReproError,
    SolverError,
    TopologyError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            LibraryError,
            TopologyError,
            PlacementError,
            InfeasibleError,
            SolverError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_catchable_as_valueerror(self):
        for exc in (ConfigurationError, LibraryError, TopologyError, PlacementError):
            assert issubclass(exc, ValueError)

    def test_runtime_errors(self):
        for exc in (InfeasibleError, SolverError):
            assert issubclass(exc, RuntimeError)

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise LibraryError("x")


class TestSolverResult:
    def test_fields_and_repr(self):
        import numpy as np

        result = SolverResult(
            placement=Placement(np.zeros((1, 1), dtype=bool)),
            hit_ratio=0.5,
            runtime_s=0.01,
            solver="Test",
            stats={"steps": 3},
        )
        assert result.stats["steps"] == 3
        assert "Test" in repr(result)
        assert "0.5" in repr(result)

    def test_default_stats(self):
        import numpy as np

        result = SolverResult(
            placement=Placement(np.zeros((1, 1), dtype=bool)),
            hit_ratio=0.0,
            runtime_s=0.0,
            solver="Test",
        )
        assert result.stats == {}
