"""Tests that the example scripts are importable and runnable.

Heavy examples are only compile-checked; the quickstart runs end to end
(it is the advertised first-contact path and must never break).
"""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_expected_examples_present(self):
        names = {path.name for path in ALL_EXAMPLES}
        assert {
            "quickstart.py",
            "llm_lora_edge.py",
            "autonomous_driving.py",
            "capacity_planning.py",
            "replacement_study.py",
            "cached_sweep.py",
        } <= names

    @pytest.mark.parametrize(
        "path", ALL_EXAMPLES, ids=[p.stem for p in ALL_EXAMPLES]
    )
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize(
        "path", ALL_EXAMPLES, ids=[p.stem for p in ALL_EXAMPLES]
    )
    def test_has_module_docstring_and_main(self, path):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), path.name
        assert 'if __name__ == "__main__":' in source, path.name

    def test_quickstart_runs(self, capsys, monkeypatch):
        monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "Placement comparison" in out
        assert "TrimCaching Spec" in out
