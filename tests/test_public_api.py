"""Tests that the public API surface stays importable and coherent."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_docstring_flow(self):
        """The flow advertised in the package docstring must work."""
        from repro import ScenarioConfig, TrimCachingGen, build_scenario

        scenario = build_scenario(
            ScenarioConfig(num_servers=2, num_users=4, num_models=6), seed=0
        )
        result = TrimCachingGen().solve(scenario.instance)
        assert 0.0 <= result.hit_ratio <= 1.0

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.placement",
            "repro.core.blockmask",
            "repro.core.objective",
            "repro.core.reference",
            "repro.core.spec",
            "repro.core.gen",
            "repro.core.dp",
            "repro.core.independent",
            "repro.core.exhaustive",
            "repro.core.extras",
            "repro.core.submodular",
            "repro.core.bounds",
            "repro.core.result",
            "repro.core.analysis",
            "repro.models",
            "repro.models.blocks",
            "repro.models.model",
            "repro.models.library",
            "repro.models.finetune",
            "repro.models.generators",
            "repro.models.popularity",
            "repro.models.accuracy",
            "repro.network",
            "repro.network.geometry",
            "repro.network.channel",
            "repro.network.servers",
            "repro.network.users",
            "repro.network.topology",
            "repro.network.backhaul",
            "repro.network.latency",
            "repro.network.mobility",
            "repro.sim",
            "repro.sim.config",
            "repro.sim.scenario",
            "repro.sim.evaluator",
            "repro.sim.mobility_eval",
            "repro.sim.replacement",
            "repro.sim.latency_report",
            "repro.sim.request_sim",
            "repro.sim.serialization",
            "repro.sim.runner",
            "repro.sim.experiments",
            "repro.exec",
            "repro.exec.backends",
            "repro.exec.store",
            "repro.exec.executor",
            "repro.utils.charts",
            "repro.data",
            "repro.data.resnet",
            "repro.data.cifar100",
            "repro.data.transformer",
            "repro.utils",
            "repro.cli",
        ],
    )
    def test_every_module_imports(self, module):
        assert importlib.import_module(module) is not None

    @pytest.mark.parametrize(
        "module",
        ["repro.core.spec", "repro.core.gen", "repro.models.library"],
    )
    def test_modules_have_docstrings(self, module):
        assert importlib.import_module(module).__doc__

    def test_solvers_share_interface(self):
        """Every exported solver exposes .name and .solve."""
        from repro import (
            ExhaustiveSearch,
            IndependentCaching,
            RandomPlacement,
            TopPopularityPlacement,
            TrimCachingGen,
            TrimCachingSpec,
        )

        for solver_cls in (
            TrimCachingSpec,
            TrimCachingGen,
            IndependentCaching,
            ExhaustiveSearch,
            RandomPlacement,
            TopPopularityPlacement,
        ):
            solver = solver_cls()
            assert isinstance(solver.name, str) and solver.name
            assert callable(solver.solve)
