"""Tests for the ASCII chart renderer."""

import pytest

from repro.utils.charts import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            [0, 1, 2],
            {"up": [0.0, 0.5, 1.0], "down": [1.0, 0.5, 0.0]},
            width=20,
            height=5,
            title="T",
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert "* up" in chart
        assert "o down" in chart

    def test_markers_placed_at_extremes(self):
        chart = ascii_chart([0, 1], {"s": [0.0, 1.0]}, width=10, height=5)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert "*" in rows[0]  # max value at top row
        assert "*" in rows[-1]  # min value at bottom row

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart([0, 1, 2], {"flat": [0.5, 0.5, 0.5]})
        assert "flat" in chart

    def test_y_axis_labels(self):
        chart = ascii_chart(
            [0, 1], {"s": [0.0, 1.0]}, width=12, height=5, y_min=0, y_max=1
        )
        assert "1" in chart
        assert "0" in chart

    def test_custom_bounds_clamp(self):
        chart = ascii_chart(
            [0, 1], {"s": [-5.0, 5.0]}, width=12, height=5, y_min=0, y_max=1
        )
        assert chart  # values outside bounds are clamped, not crashing

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {})
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"s": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([0], {"s": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"s": [0.0, 1.0]}, width=5)

    def test_many_series_cycle_markers(self):
        series = {f"s{i}": [float(i), float(i + 1)] for i in range(10)}
        chart = ascii_chart([0, 1], series)
        assert "s9" in chart
