"""Tests for deterministic RNG spawning."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator


class TestAsGenerator:
    def test_int_seed_reproducible(self):
        a = as_generator(42).integers(0, 1_000_000, size=10)
        b = as_generator(42).integers(0, 1_000_000, size=10)
        assert (a == b).all()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestRngFactory:
    def test_same_label_same_stream(self):
        a = RngFactory(1).child("topology").uniform(size=5)
        b = RngFactory(1).child("topology").uniform(size=5)
        assert (a == b).all()

    def test_different_labels_differ(self):
        factory = RngFactory(1)
        a = factory.child("topology").uniform(size=20)
        b = factory.child("fading").uniform(size=20)
        assert not (a == b).all()

    def test_different_indices_differ(self):
        factory = RngFactory(1)
        a = factory.child("x", 0).uniform(size=20)
        b = factory.child("x", 1).uniform(size=20)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngFactory(1).child("x").uniform(size=20)
        b = RngFactory(2).child("x").uniform(size=20)
        assert not (a == b).all()

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(1).child("x", -1)

    def test_seed_property(self):
        assert RngFactory(9).seed == 9
        assert RngFactory(None).seed is None

    def test_child_streams_are_independent_of_call_order(self):
        factory = RngFactory(3)
        first = factory.child("b").uniform(size=5)
        factory2 = RngFactory(3)
        factory2.child("a")  # consuming another label must not shift "b"
        second = factory2.child("b").uniform(size=5)
        assert (first == second).all()
