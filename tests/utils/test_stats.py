"""Tests for streaming statistics and series aggregation."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    RunningStats,
    SeriesStats,
    aggregate_series,
    average_relative_gain,
    relative_gain,
    summarize,
)


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.std == 0.0

    def test_known_values(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(32.0 / 7.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0

    def test_single_sample_has_zero_variance(self):
        stats = RunningStats()
        stats.add(3.0)
        assert stats.variance == 0.0
        assert stats.confidence_interval() == 0.0

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            RunningStats().add(float("nan"))

    def test_confidence_interval_shrinks(self):
        wide = RunningStats()
        narrow = RunningStats()
        wide.extend([0.0, 1.0] * 5)
        narrow.extend([0.0, 1.0] * 500)
        assert narrow.confidence_interval() < wide.confidence_interval()

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_matches_numpy(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(np.mean(values), abs=1e-6)
        assert stats.std == pytest.approx(np.std(values, ddof=1), abs=1e-6)


class TestSeriesStats:
    def test_add_run_shapes(self):
        series = SeriesStats([1, 2, 3])
        series.add_run([0.1, 0.2, 0.3])
        series.add_run([0.3, 0.4, 0.5])
        assert series.means == pytest.approx([0.2, 0.3, 0.4])
        assert (series.counts == 2).all()

    def test_wrong_length_rejected(self):
        series = SeriesStats([1, 2])
        with pytest.raises(ValueError):
            series.add_run([0.1])

    def test_aggregate_series(self):
        series = aggregate_series([1, 2], [[1.0, 2.0], [3.0, 4.0]])
        assert series.means == pytest.approx([2.0, 3.0])


class TestSummaries:
    def test_summarize(self):
        out = summarize([1.0, 2.0, 3.0])
        assert out["count"] == 3
        assert out["mean"] == pytest.approx(2.0)
        assert out["min"] == 1.0
        assert out["max"] == 3.0

    def test_relative_gain_matches_paper_convention(self):
        # "33.93% higher than baseline" style.
        assert relative_gain(0.6698, 0.5) == pytest.approx(0.3396)

    def test_relative_gain_zero_baseline(self):
        with pytest.raises(ValueError):
            relative_gain(1.0, 0.0)

    def test_average_relative_gain(self):
        gain = average_relative_gain([1.1, 1.2], [1.0, 1.0])
        assert gain == pytest.approx(0.15)

    def test_average_relative_gain_validates(self):
        with pytest.raises(ValueError):
            average_relative_gain([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            average_relative_gain([], [])


class TestFromMoments:
    def test_moments_survive(self):
        from repro.utils.stats import RunningStats

        original = RunningStats()
        for value in (0.1, 0.5, 0.9):
            original.add(value)
        restored = RunningStats.from_moments(
            original.count, original.mean, original.std
        )
        assert restored.count == original.count
        assert restored.mean == original.mean
        assert restored.std == original.std

    def test_unknown_extrema_are_nan(self):
        import math

        from repro.utils.stats import RunningStats

        restored = RunningStats.from_moments(3, 0.5, 0.1)
        assert math.isnan(restored.minimum)
        assert math.isnan(restored.maximum)
        restored.add(0.7)  # extrema stay unknowable after more samples
        assert math.isnan(restored.minimum)
        assert restored.count == 4

    def test_negative_count_rejected(self):
        from repro.utils.stats import RunningStats

        with pytest.raises(ValueError):
            RunningStats.from_moments(-1, 0.0, 0.0)

    def test_extrema_restored_when_serialised(self):
        original = RunningStats()
        original.extend([0.2, 0.9, 0.4])
        restored = RunningStats.from_moments(
            original.count,
            original.mean,
            original.std,
            minimum=original.minimum,
            maximum=original.maximum,
        )
        assert restored.minimum == 0.2
        assert restored.maximum == 0.9
        restored.add(0.1)  # known extrema keep updating normally
        assert restored.minimum == 0.1
        assert restored.maximum == 0.9

    def test_empty_restored_extrema_are_fresh(self):
        restored = RunningStats.from_moments(0, 0.0, 0.0)
        assert restored.minimum == math.inf
        assert restored.maximum == -math.inf
        restored.add(0.5)
        assert restored.minimum == 0.5
        assert restored.maximum == 0.5

    def test_series_extrema_round_trip(self):
        series = SeriesStats([1.0, 2.0])
        series.add_run([0.3, 0.8])
        series.add_run([0.5, 0.2])
        restored = SeriesStats.from_moments(
            [1.0, 2.0],
            series.means.tolist(),
            series.stds.tolist(),
            series.counts.tolist(),
            minima=series.minima.tolist(),
            maxima=series.maxima.tolist(),
        )
        assert (restored.minima == np.array([0.3, 0.2])).all()
        assert (restored.maxima == np.array([0.5, 0.8])).all()

    def test_series_extrema_length_checked(self):
        with pytest.raises(ValueError, match="extrema"):
            SeriesStats.from_moments(
                [1.0, 2.0], [0.5, 0.5], [0.0, 0.0], [1, 1], minima=[0.5]
            )


class TestVectorisedFolds:
    """add_array / merge agree with sequential add calls."""

    def test_add_array_matches_sequential(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=137)
        sequential = RunningStats()
        sequential.extend(values)
        vectorised = RunningStats()
        vectorised.add_array(values[:50])
        vectorised.add_array(values[50:51])
        vectorised.add_array(values[51:])
        assert vectorised.count == sequential.count
        assert vectorised.minimum == sequential.minimum
        assert vectorised.maximum == sequential.maximum
        assert math.isclose(vectorised.mean, sequential.mean, rel_tol=1e-12)
        assert math.isclose(
            vectorised.variance, sequential.variance, rel_tol=1e-9
        )

    def test_add_array_accepts_2d_and_empty(self):
        stats = RunningStats()
        stats.add_array(np.empty((0,)))
        assert stats.count == 0
        stats.add_array(np.arange(6.0).reshape(2, 3))
        assert stats.count == 6
        assert stats.minimum == 0.0 and stats.maximum == 5.0

    def test_add_array_rejects_nan(self):
        stats = RunningStats()
        with pytest.raises(ValueError, match="NaN"):
            stats.add_array(np.array([1.0, float("nan")]))
        assert stats.count == 0

    def test_merge_matches_union(self):
        rng = np.random.default_rng(1)
        left_values = rng.normal(size=40)
        right_values = rng.normal(loc=3.0, size=25)
        left = RunningStats()
        left.extend(left_values)
        right = RunningStats()
        right.extend(right_values)
        left.merge(right)
        union = RunningStats()
        union.extend(np.concatenate([left_values, right_values]))
        assert left.count == union.count
        assert left.minimum == union.minimum
        assert left.maximum == union.maximum
        assert math.isclose(left.mean, union.mean, rel_tol=1e-12)
        assert math.isclose(left.variance, union.variance, rel_tol=1e-9)

    def test_merge_empty_is_noop_and_into_empty_copies(self):
        filled = RunningStats()
        filled.extend([1.0, 2.0, 3.0])
        before = (filled.count, filled.mean, filled.variance)
        filled.merge(RunningStats())
        assert (filled.count, filled.mean, filled.variance) == before
        empty = RunningStats()
        empty.merge(filled)
        assert empty.count == filled.count
        assert empty.mean == filled.mean
        assert empty.variance == filled.variance

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=1,
            max_size=60,
        ),
        st.integers(min_value=1, max_value=61),
    )
    def test_chunked_fold_property(self, values, chunk):
        array = np.asarray(values)
        sequential = RunningStats()
        sequential.extend(array)
        chunked = RunningStats()
        for start in range(0, array.size, chunk):
            chunked.add_array(array[start : start + chunk])
        assert chunked.count == sequential.count
        assert chunked.minimum == sequential.minimum
        assert chunked.maximum == sequential.maximum
        assert math.isclose(
            chunked.mean, sequential.mean, rel_tol=1e-9, abs_tol=1e-9
        )
