"""Tests for ASCII table rendering."""

import pytest

from repro.utils.tables import format_mapping, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "v"], [["aa", 1], ["b", 22]])
        lines = out.splitlines()
        assert lines[0] == "name | v"
        assert lines[1] == "-----+---"
        assert lines[2] == "aa   | 1"
        assert lines[3] == "b    | 22"

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_format(self):
        out = format_table(["x"], [[0.123456]], float_format=".2f")
        assert "0.12" in out
        assert "0.1234" not in out

    def test_bool_not_float_formatted(self):
        out = format_table(["x"], [[True]])
        assert "True" in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_no_rows(self):
        out = format_table(["a"], [])
        assert out.splitlines()[0] == "a"


class TestFormatMapping:
    def test_renders_pairs(self):
        out = format_mapping({"alpha": 1, "beta": 2})
        assert "alpha" in out and "beta" in out
        assert out.splitlines()[0].startswith("key")
