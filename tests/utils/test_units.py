"""Tests for unit constants and converters."""

import math

import pytest

from repro.utils.units import (
    GB,
    GBPS,
    KB,
    MB,
    MBPS,
    dbm_to_watts,
    format_rate,
    format_size,
    watts_to_dbm,
)


class TestConstants:
    def test_decimal_storage_units(self):
        assert KB == 1_000
        assert MB == 1_000_000
        assert GB == 1_000_000_000

    def test_rate_units(self):
        assert MBPS == 1e6
        assert GBPS == 1e9


class TestPowerConversion:
    def test_reference_points(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)
        # The paper's 43 dBm transmit power is ~20 W.
        assert dbm_to_watts(43.0) == pytest.approx(19.95, rel=1e-3)

    def test_roundtrip(self):
        for dbm in (-50.0, 0.0, 17.0, 43.0):
            assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_nonpositive_watts_rejected(self):
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)
        with pytest.raises(ValueError):
            watts_to_dbm(-1.0)


class TestFormatting:
    def test_format_size_scales(self):
        assert format_size(1_500_000_000) == "1.50 GB"
        assert format_size(2_000_000) == "2.00 MB"
        assert format_size(3_000) == "3.00 KB"
        assert format_size(250) == "250 B"

    def test_format_size_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-1)

    def test_format_rate_scales(self):
        assert format_rate(2.5e9) == "2.50 Gbps"
        assert format_rate(5e6) == "5.00 Mbps"
        assert format_rate(100) == "100 bps"

    def test_format_rate_negative_rejected(self):
        with pytest.raises(ValueError):
            format_rate(-1.0)
