"""Tests for argument-validation helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_in_range,
    check_interval,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckType:
    def test_accepts(self):
        assert check_type("x", 1, int) == 1
        assert check_type("x", "s", (int, str)) == "s"

    def test_rejects_with_message(self):
        with pytest.raises(ConfigurationError, match="x must be int"):
            check_type("x", "s", int)


class TestCheckPositive:
    def test_strict(self):
        assert check_positive("x", 1) == 1
        with pytest.raises(ConfigurationError):
            check_positive("x", 0)

    def test_non_strict(self):
        assert check_positive("x", 0, strict=False) == 0
        with pytest.raises(ConfigurationError):
            check_positive("x", -1, strict=False)

    def test_bool_is_not_a_number(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", True)

    def test_non_number(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", "1")


class TestCheckInRange:
    def test_inclusive(self):
        assert check_in_range("x", 0.5, 0, 1) == 0.5
        assert check_in_range("x", 0, 0, 1) == 0

    def test_exclusive(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 0, 0, 1, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            check_in_range("x", 2, 0, 1)


class TestCheckProbability:
    def test_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            check_probability("p", 1.5)


class TestCheckInterval:
    def test_valid(self):
        assert check_interval("r", (0.5, 1.0)) == (0.5, 1.0)

    def test_unordered(self):
        with pytest.raises(ConfigurationError):
            check_interval("r", (1.0, 0.5))

    def test_not_a_pair(self):
        with pytest.raises(ConfigurationError):
            check_interval("r", (1.0,))
        with pytest.raises(ConfigurationError):
            check_interval("r", ("a", "b"))
